"""Fixed-size page storage over a real file (or memory).

``PageFile`` is deliberately boring: numbered 4-KiB pages, explicit
``read_page``/``write_page``, physical-I/O counters, optional
synchronous-write mode mirroring the paper's ``O_SYNC`` experiments.
The buffer pool (:mod:`repro.storage.buffer`) sits on top.

Durability hardening (see ``docs/durability.md``):

* physical writes loop over ``os.pwrite`` until every byte lands — a
  short write is completed, zero progress raises ``StorageError``
  (before, a short write was a silent torn page);
* physical reads loop over ``os.pread`` so an interior short read is
  completed; reads hitting a transient ``OSError`` are retried under a
  :class:`~repro.resilience.RetryPolicy` (bounded attempts,
  exponential backoff with a jitter cap — ``retry_policy=`` swaps the
  default, e.g. to also retry ``CorruptPageError`` on media where a
  re-read may return different bytes); exhaustion raises
  :class:`~repro.exceptions.RetryExhaustedError` carrying the attempt
  count;
* ``checksums=True`` reserves the last 8 bytes of every page for a
  trailer — CRC32 over (page id, generation, payload) plus the
  checkpoint generation that wrote the page — stamped on every write
  and verified on every read; a mismatch raises
  :class:`~repro.exceptions.CorruptPageError` and is counted as a
  ``storage.corruption.pages`` metric / ``corrupt-page`` trace event;
* ``close()`` fsyncs before releasing the descriptor, so a cleanly
  closed file is durable even without ``sync_writes``;
* every physical operation passes an armed failpoint site
  (:mod:`repro.storage.failpoints`), so crash behaviour is *testable*.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.exceptions import CorruptPageError, StorageError
from repro.obs import get_registry
from repro.obs.trace import get_tracer
from repro.resilience.retry import RetryPolicy
from repro.storage.failpoints import CrashInjected, get_failpoints
from repro.storage.metrics import IOMetrics

#: Per-page trailer in checksum mode: CRC32, writing generation.
_TRAILER = struct.Struct("<II")

_FAILPOINTS = get_failpoints()


class PageFile:
    """A growable array of fixed-size pages.

    Parameters
    ----------
    path:
        Backing file path; ``None`` keeps pages in memory (still counted
        as physical I/O — useful for fast experiments with identical
        accounting).
    page_size:
        Bytes per page.
    sync_writes:
        When true, every physical write is flushed (``os.fsync``) —
        the paper's ``O_SYNC`` configuration — and counted as such.
    checksums:
        When true, the last ``8`` bytes of every page hold a CRC32 +
        generation trailer, stamped on write and verified on read.
        Callers must then pack records only into the first
        :attr:`payload_size` bytes of each page.
    retry_policy:
        The :class:`~repro.resilience.RetryPolicy` governing read
        retries. ``None`` means the historical default (``OSError``
        only, ``READ_RETRIES`` retries, ``RETRY_BACKOFF`` base). A
        policy whose ``retryable`` includes
        :class:`~repro.exceptions.CorruptPageError` re-reads and
        re-verifies on checksum failure; each failed verification is
        still counted individually in ``checksum_failures``.
    """

    #: Read attempts beyond the first on transient ``OSError``
    #: (default ``retry_policy`` budget).
    READ_RETRIES = 3
    #: Base backoff between read retries (doubles per attempt).
    RETRY_BACKOFF = 0.002

    def __init__(self, path=None, page_size=4096, sync_writes=False,
                 checksums=False, retry_policy=None):
        if page_size <= 0:
            raise StorageError("page_size must be positive")
        if checksums and page_size <= _TRAILER.size:
            raise StorageError(
                f"page_size {page_size} cannot hold the "
                f"{_TRAILER.size}-byte checksum trailer")
        self.page_size = page_size
        self.sync_writes = sync_writes
        self.checksums = checksums
        #: Generation stamped into page trailers (the disk index bumps
        #: this at each checkpoint; purely diagnostic for other users).
        self.generation = 0
        self.metrics = IOMetrics()
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy(retries=self.READ_RETRIES,
                             base_backoff=self.RETRY_BACKOFF,
                             max_backoff=0.1, jitter=0.25, seed=0)
        self._path = path
        self._page_count = 0
        self._closed = False
        self._writes_since_sync = False
        if path is None:
            self._pages = {}
            self._fd = None
        else:
            self._pages = None
            self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)

    @property
    def page_count(self):
        """Number of allocated pages."""
        return self._page_count

    @property
    def payload_size(self):
        """Caller-usable bytes per page (page size minus the checksum
        trailer when checksums are on)."""
        if self.checksums:
            return self.page_size - _TRAILER.size
        return self.page_size

    def allocate_page(self):
        """Append a zeroed page; returns its id (no physical I/O yet)."""
        self._check_open()
        pid = self._page_count
        self._page_count += 1
        return pid

    # -- reads ---------------------------------------------------------

    def read_page(self, page_id, verify=True, cancel=None):
        """Physically read one page; returns a ``bytearray``.

        In checksum mode the trailer is verified (``verify=False``
        skips that — for probing possibly-torn metadata slots and for
        fsck's structured scanning). Each attempt is the full
        read-then-verify unit, retried under :attr:`retry_policy`
        (``OSError`` only by default); exhaustion raises
        :class:`~repro.exceptions.RetryExhaustedError` — a
        ``StorageError`` carrying the attempt count and the read site.
        ``cancel`` clips backoff sleeps to the caller's remaining
        deadline and aborts the loop once the token expires.
        """
        self._check_open()
        self._check_page(page_id)
        self.metrics.record_read(page_id)

        def _attempt():
            if _FAILPOINTS.active:
                _FAILPOINTS.fire("pager.read", page=page_id)
            if self._fd is None:
                data = self._pages.get(page_id) or b""
            else:
                data = self._pread_full(page_id)
            buf = bytearray(self.page_size)
            buf[:len(data)] = data
            if verify and self.checksums:
                self._verify(page_id, buf)
            return buf

        def _on_retry(attempt, exc):
            self.metrics.read_retries += 1

        return self.retry_policy.call(_attempt,
                                      site=f"page {page_id} read",
                                      cancel=cancel, on_retry=_on_retry)

    def _pread_full(self, page_id):
        """Read one page's bytes, completing interior short reads; a
        read at EOF returns what exists (caller zero-fills)."""
        offset = page_id * self.page_size
        parts = []
        got = 0
        while got < self.page_size:
            chunk = os.pread(self._fd, self.page_size - got, offset + got)
            if not chunk:
                break  # EOF: trailing fresh page, zero-filled by caller
            parts.append(chunk)
            got += len(chunk)
        return b"".join(parts)

    # -- writes --------------------------------------------------------

    def write_page(self, page_id, data):
        """Physically write one page (stamping the checksum trailer in
        checksum mode). Loops until every byte lands; zero progress
        raises ``StorageError``."""
        self._check_open()
        self._check_page(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"page write of {len(data)} bytes, expected "
                f"{self.page_size}")
        mode = None
        if _FAILPOINTS.active:
            try:
                mode = _FAILPOINTS.fire("pager.write", page=page_id)
            except OSError as exc:
                # Same contract as a real kernel failure below: write
                # errors surface as StorageError.
                raise StorageError(
                    f"page {page_id} write failed: {exc}") from exc
        self.metrics.record_write(page_id, sync=self.sync_writes)
        # A physical write during a traced query is a dirty write-back
        # that query forced (eviction under buffer pressure) — worth
        # attributing. Reads are attributed at the buffer-miss level.
        span = get_tracer().active
        if span is not None:
            span.event("page-write", page=page_id,
                       sync=self.sync_writes)
        if self.checksums:
            out = self._stamp(page_id, data)
        else:
            out = bytes(data)
        if self._fd is None:
            if mode == "torn":
                half = self.page_size // 2
                self._pages[page_id] = (out[:half]
                                        + b"\x00" * (self.page_size - half))
                raise CrashInjected(
                    f"simulated torn write at page {page_id}")
            self._pages[page_id] = out
            return
        offset = page_id * self.page_size
        if mode == "torn":
            os.pwrite(self._fd, out[:self.page_size // 2], offset)
            self._writes_since_sync = True
            raise CrashInjected(f"simulated torn write at page {page_id}")
        try:
            self._pwrite_all(out, offset, simulate_short=(mode == "short"))
        except OSError as exc:
            raise StorageError(
                f"page {page_id} write failed: {exc}") from exc
        self._writes_since_sync = True
        if self.sync_writes:
            self.fsync()

    def _pwrite_all(self, data, offset, simulate_short=False):
        view = memoryview(data)
        total = 0
        while total < len(data):
            chunk = view[total:]
            if simulate_short and total == 0 and len(chunk) > 1:
                # Injected fault: the kernel accepts only half the
                # request — the loop must transparently finish the rest.
                chunk = chunk[:len(chunk) // 2]
            written = os.pwrite(self._fd, chunk, offset + total)
            if written <= 0:
                raise StorageError(
                    f"pwrite made no progress at offset {offset + total} "
                    f"({written} of {len(chunk)} bytes)")
            total += written

    # -- checksums -----------------------------------------------------

    @staticmethod
    def _crc(page_id, payload, generation):
        seed = zlib.crc32(struct.pack("<QI", page_id,
                                      generation & 0xFFFFFFFF))
        return zlib.crc32(payload, seed)

    def _stamp(self, page_id, data):
        trailer_off = self.page_size - _TRAILER.size
        payload = bytes(data[:trailer_off])
        gen = self.generation & 0xFFFFFFFF
        return payload + _TRAILER.pack(self._crc(page_id, payload, gen),
                                       gen)

    def verify_page(self, page_id, buf):
        """True iff ``buf`` (a full page) carries a valid trailer."""
        trailer_off = self.page_size - _TRAILER.size
        stored_crc, stored_gen = _TRAILER.unpack_from(buf, trailer_off)
        payload = bytes(buf[:trailer_off])
        return self._crc(page_id, payload, stored_gen) == stored_crc

    def _verify(self, page_id, buf):
        if self.verify_page(page_id, buf):
            return
        trailer_off = self.page_size - _TRAILER.size
        _, stored_gen = _TRAILER.unpack_from(buf, trailer_off)
        zeroed = not any(buf)
        self.metrics.checksum_failures += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("storage.corruption.pages").inc()
        span = get_tracer().active
        if span is not None:
            span.event("corrupt-page", page=page_id,
                       generation=None if zeroed else stored_gen)
        where = self._path or "<memory>"
        detail = ("page is all zeroes (never written, or zeroed by a "
                  "torn write)" if zeroed
                  else "stored CRC does not match contents")
        raise CorruptPageError(
            f"{where}: page {page_id}: {detail} "
            f"(trailer generation {stored_gen})",
            page_id=page_id,
            generation=None if zeroed else stored_gen,
            path=self._path)

    # -- durability ----------------------------------------------------

    def fsync(self):
        """Force written pages to stable storage (no-op in memory, or
        when nothing was written since the last sync)."""
        self._check_open()
        if _FAILPOINTS.active:
            _FAILPOINTS.fire("pager.fsync")
        if self._fd is not None and self._writes_since_sync:
            os.fsync(self._fd)
            self._writes_since_sync = False

    def close(self, sync=True):
        """Release the backing file descriptor (idempotent).

        A clean close fsyncs first, so data written without
        ``sync_writes`` is durable once ``close()`` returns.
        ``sync=False`` skips that — the crash-simulation path.
        """
        if self._closed:
            return
        self._closed = True
        if self._fd is not None:
            try:
                if sync and self._writes_since_sync:
                    try:
                        os.fsync(self._fd)
                    except OSError as exc:
                        raise StorageError(
                            f"fsync on close failed: {exc}") from exc
            finally:
                os.close(self._fd)
                self._fd = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _check_open(self):
        if self._closed:
            raise StorageError("page file is closed")

    def _check_page(self, page_id):
        if not 0 <= page_id < self._page_count:
            raise StorageError(
                f"page {page_id} out of range 0..{self._page_count - 1}")
