"""Fixed-size page storage over a real file (or memory).

``PageFile`` is deliberately boring: numbered 4-KiB pages, explicit
``read_page``/``write_page``, physical-I/O counters, optional
synchronous-write mode mirroring the paper's ``O_SYNC`` experiments.
The buffer pool (:mod:`repro.storage.buffer`) sits on top.
"""

from __future__ import annotations

import os

from repro.exceptions import StorageError
from repro.obs.trace import get_tracer
from repro.storage.metrics import IOMetrics


class PageFile:
    """A growable array of fixed-size pages.

    Parameters
    ----------
    path:
        Backing file path; ``None`` keeps pages in memory (still counted
        as physical I/O — useful for fast experiments with identical
        accounting).
    page_size:
        Bytes per page.
    sync_writes:
        When true, every physical write is flushed (``os.fsync``) —
        the paper's ``O_SYNC`` configuration — and counted as such.
    """

    def __init__(self, path=None, page_size=4096, sync_writes=False):
        if page_size <= 0:
            raise StorageError("page_size must be positive")
        self.page_size = page_size
        self.sync_writes = sync_writes
        self.metrics = IOMetrics()
        self._path = path
        self._page_count = 0
        self._closed = False
        if path is None:
            self._pages = {}
            self._fd = None
        else:
            self._pages = None
            self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)

    @property
    def page_count(self):
        """Number of allocated pages."""
        return self._page_count

    def allocate_page(self):
        """Append a zeroed page; returns its id (no physical I/O yet)."""
        self._check_open()
        pid = self._page_count
        self._page_count += 1
        return pid

    def read_page(self, page_id):
        """Physically read one page; returns a ``bytearray``."""
        self._check_open()
        self._check_page(page_id)
        self.metrics.record_read(page_id)
        if self._fd is None:
            data = self._pages.get(page_id)
            if data is None:
                return bytearray(self.page_size)
            return bytearray(data)
        data = os.pread(self._fd, self.page_size,
                        page_id * self.page_size)
        buf = bytearray(self.page_size)
        buf[:len(data)] = data
        return buf

    def write_page(self, page_id, data):
        """Physically write one page."""
        self._check_open()
        self._check_page(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"page write of {len(data)} bytes, expected "
                f"{self.page_size}")
        self.metrics.record_write(page_id, sync=self.sync_writes)
        # A physical write during a traced query is a dirty write-back
        # that query forced (eviction under buffer pressure) — worth
        # attributing. Reads are attributed at the buffer-miss level.
        span = get_tracer().active
        if span is not None:
            span.event("page-write", page=page_id,
                       sync=self.sync_writes)
        if self._fd is None:
            self._pages[page_id] = bytes(data)
        else:
            os.pwrite(self._fd, bytes(data), page_id * self.page_size)
            if self.sync_writes:
                os.fsync(self._fd)

    def close(self):
        """Release the backing file descriptor (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _check_open(self):
        if self._closed:
            raise StorageError("page file is closed")

    def _check_page(self, page_id):
        if not 0 <= page_id < self._page_count:
            raise StorageError(
                f"page {page_id} out of range 0..{self._page_count - 1}")
