"""Offline integrity scan of a persisted disk SPINE index.

``fsck(path)`` never mutates the file and never stops at the first
problem: it probes both metadata slots, walks the generation chains,
re-derives the blob CRCs, verifies the per-page checksum trailer of
every page the active generation references, and sanity-checks the RT
free lists — accumulating everything it finds into one machine-readable
report (the ``repro fsck`` subcommand emits it as JSON).

The scan understands all three on-disk formats. Version-1/2 files have
no page checksums and no generation slots, so for them the scan is
limited to the metadata chain and the structural checks; the report
says so rather than silently claiming full coverage.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.exceptions import CorruptPageError, StorageError
from repro.storage.pager import PageFile
from repro.storage.wal import scan_wal, wal_path_for

_LEGACY = struct.Struct("<4sHq")
_V3 = struct.Struct("<4sHHqqI")
_MAGIC = b"SPDK"


def _walk_blob(blob, version):
    """Parse a metadata blob into counters, region directories and RT
    free lists (mirrors ``DiskSpineIndex._parse_meta_blob``, but builds
    a plain report instead of an index)."""
    offset = 0
    n, rib_count, sep, sym_len = struct.unpack_from("<qqhH", blob, offset)
    offset += 20
    symbols = blob[offset:offset + sym_len].decode("utf-8")
    offset += sym_len
    if version >= 2:
        _flags, name_len = struct.unpack_from("<BH", blob, offset)
        offset += 3 + name_len
    max_fanout = max(1, len(symbols) - 1)
    region_names = ["cl", "lt", "ext"]
    region_names += [f"rt{k}" for k in range(1, max_fanout + 1)]
    regions = []
    for name in region_names:
        count, npages = struct.unpack_from("<qi", blob, offset)
        offset += 12
        pages = list(struct.unpack_from(f"<{npages}i", blob, offset))
        offset += 4 * npages
        regions.append({"name": name, "records": count, "pages": pages})
    free_lists = {}
    for k in range(1, max_fanout + 1):
        (nfree,) = struct.unpack_from("<i", blob, offset)
        offset += 4
        free_lists[k] = list(struct.unpack_from(f"<{nfree}i", blob,
                                                offset))
        offset += 4 * nfree
    return {"n": n, "rib_count": rib_count, "symbols": symbols,
            "regions": regions, "free_lists": free_lists}


def _read_slot(pagefile, slot):
    """``(generation, blob, chain)`` of one v3 slot, or raise."""
    frame = pagefile.read_page(slot)
    magic, version, _flags, blob_len, gen, blob_crc = _V3.unpack_from(
        frame)
    if magic != _MAGIC:
        raise StorageError("bad magic")
    if version != 3:
        raise StorageError(f"slot holds format version {version}")
    payload = pagefile.payload_size
    per_page = payload - 4
    if not 0 <= blob_len <= pagefile.page_count * per_page:
        raise StorageError(f"implausible metadata length {blob_len}")
    chunks = [bytes(frame[_V3.size:per_page])]
    (nxt,) = struct.unpack_from("<i", frame, payload - 4)
    chain = []
    seen = {slot}
    while nxt != -1:
        if nxt in seen or not 0 <= nxt < pagefile.page_count:
            raise StorageError(f"metadata chain broken at page {nxt}")
        seen.add(nxt)
        chain.append(nxt)
        frame = pagefile.read_page(nxt)
        chunks.append(bytes(frame[:per_page]))
        (nxt,) = struct.unpack_from("<i", frame, payload - 4)
    blob = b"".join(chunks)
    if len(blob) < blob_len:
        raise StorageError("metadata chain shorter than blob length")
    blob = blob[:blob_len]
    if zlib.crc32(blob) != blob_crc:
        raise StorageError("metadata blob CRC mismatch")
    return gen, blob, chain


def _check_free_lists(meta, report):
    """RT free lists must index in-range rows of existing RT pages and
    hold no duplicates."""
    regions = {r["name"]: r for r in meta["regions"]}
    for k, rows in meta["free_lists"].items():
        region = regions.get(f"rt{k}")
        npages = len(region["pages"]) if region else 0
        seen = set()
        for row in rows:
            if row in seen:
                report["errors"].append(
                    f"rt{k} free list: row {row} listed twice")
            seen.add(row)
            if row < 0:
                report["errors"].append(
                    f"rt{k} free list: negative row {row}")
            # Rows index records, capped by the pages the class owns;
            # without the record size we bound by the region's record
            # count high-water mark instead.
            elif region and row >= max(region["records"], 1) \
                    and npages == 0:
                report["errors"].append(
                    f"rt{k} free list: row {row} but class owns no pages")


def fsck(path, page_size=4096):
    """Scan a persisted disk SPINE index; returns the report dict.

    ``report["ok"]`` is True iff no errors were found (warnings — e.g.
    reduced coverage on a legacy file — do not fail the scan).
    """
    report = {
        "path": path,
        "page_size": page_size,
        "file_size": None,
        "page_count": None,
        "format": None,
        "slots": [],
        "active_generation": None,
        "regions": [],
        "pages_checked": 0,
        "corrupt_pages": [],
        "orphan_pages": 0,
        "wal": None,
        "errors": [],
        "warnings": [],
        "ok": False,
    }
    if not os.path.exists(path):
        report["errors"].append("no such file")
        return report
    size = os.path.getsize(path)
    report["file_size"] = size
    if size == 0:
        report["errors"].append("empty file — no checkpoint was ever "
                                "written")
        return report
    if size < page_size:
        report["errors"].append(
            f"file is {size} bytes, shorter than one {page_size}-byte "
            "page")
        return report
    page_count = size // page_size
    report["page_count"] = page_count
    if size % page_size:
        report["warnings"].append(
            f"{size % page_size} trailing bytes beyond the last whole "
            "page (torn final write?)")
    with open(path, "rb") as handle:
        head0 = handle.read(page_size)
        handle.seek(page_size)
        head1 = handle.read(page_size)
    version = None
    for head in (head0, head1):
        if len(head) >= _LEGACY.size and head[:4] == _MAGIC:
            (v,) = struct.unpack_from("<H", head, 4)
            if head is head0 and v in (1, 2):
                version = v
                break
            if v == 3:
                version = 3
                break
    if version is None:
        report["errors"].append(
            "not a disk SPINE index (no valid metadata slot)")
        return report
    report["format"] = version
    _fsck_wal(path, report)
    if version < 3:
        return _fsck_legacy(path, page_size, page_count, version, report)
    return _fsck_v3(path, page_size, page_count, report)


def _fsck_wal(path, report):
    """Scan the sidecar WAL into ``report["wal"]``.

    Only warnings come out of here: a torn tail is what recovery
    truncates by design, and a WAL-less file must keep the exact exit
    semantics it had before WALs existed."""
    scan = scan_wal(wal_path_for(path))
    report["wal"] = scan.to_dict()
    if not scan.exists:
        return
    if not scan.header_ok:
        report["warnings"].append(
            f"WAL header does not parse ({scan.torn_reason}); recovery "
            "reinitializes it as an empty log")
    elif scan.torn_reason is not None:
        report["warnings"].append(
            f"WAL tail torn after {len(scan.records)} valid record(s) "
            f"at LSN {scan.last_lsn}: {scan.torn_reason} "
            f"({scan.tail_bytes} bytes truncated on reopen)")


def _fsck_v3(path, page_size, page_count, report):
    pagefile = PageFile(path=path, page_size=page_size, checksums=True)
    pagefile._page_count = page_count
    try:
        candidates = []
        for slot in (0, 1):
            entry = {"slot": slot}
            if slot >= page_count:
                entry.update(status="invalid", error="past end of file")
                report["slots"].append(entry)
                continue
            try:
                gen, blob, chain = _read_slot(pagefile, slot)
            except (StorageError, struct.error) as exc:
                entry.update(status="invalid", error=str(exc))
            else:
                entry.update(status="valid", generation=gen,
                             chain_pages=len(chain))
                candidates.append((gen, slot, blob, chain))
            report["slots"].append(entry)
        if not candidates:
            report["errors"].append("no intact checkpoint generation")
            return report
        if len(candidates) < 2:
            report["warnings"].append(
                "only one metadata slot is valid (normal before the "
                "second checkpoint; after that, evidence of a torn "
                "commit that recovery would fall back from)")
        gen, slot, blob, chains_of_winner = max(candidates)
        report["active_generation"] = gen
        wal = report["wal"]
        if (wal and wal["present"] and wal["header_ok"]
                and wal["base_generation"] > gen):
            report["warnings"].append(
                f"WAL base generation {wal['base_generation']} is "
                f"ahead of the active checkpoint {gen}; its records "
                "will not be replayed")
        try:
            meta = _walk_blob(blob, 3)
        except (struct.error, UnicodeDecodeError) as exc:
            report["errors"].append(
                f"metadata blob of generation {gen} does not parse: "
                f"{exc}")
            return report
        report["regions"] = [
            {"name": r["name"], "records": r["records"],
             "pages": len(r["pages"])} for r in meta["regions"]]
        referenced = set()
        for r in meta["regions"]:
            for page_id in r["pages"]:
                if page_id in referenced:
                    report["errors"].append(
                        f"page {page_id} referenced by more than one "
                        "region slot")
                if not 0 <= page_id < page_count:
                    report["errors"].append(
                        f"{r['name']}: page {page_id} out of range "
                        f"0..{page_count - 1}")
                    continue
                if page_id in (0, 1):
                    report["errors"].append(
                        f"{r['name']}: page {page_id} is a metadata "
                        "slot")
                    continue
                referenced.add(page_id)
        # Per-page CRC verification of every data page the active
        # generation references (all-zero fresh pages are legitimate:
        # allocated, records packed in memory, but the page image
        # written by the committing flush — so any page that reached
        # the checkpoint is stamped; trust the trailer).
        for page_id in sorted(referenced):
            report["pages_checked"] += 1
            try:
                pagefile.read_page(page_id)
            except CorruptPageError as exc:
                report["corrupt_pages"].append(
                    {"page": page_id, "error": str(exc)})
            except StorageError as exc:
                report["corrupt_pages"].append(
                    {"page": page_id, "error": f"unreadable: {exc}"})
        if report["corrupt_pages"]:
            report["errors"].append(
                f"{len(report['corrupt_pages'])} corrupt page(s) in "
                f"generation {gen}")
        chain_pages = set()
        for _g, _s, _b, chain in candidates:
            chain_pages.update(chain)
        overlap = referenced & chain_pages
        if overlap:
            report["errors"].append(
                f"metadata chain pages also referenced as data: "
                f"{sorted(overlap)}")
        keep = referenced | chain_pages | {0, 1}
        report["orphan_pages"] = (
            page_count - len(keep & set(range(page_count))))
        _check_free_lists(meta, report)
        report["ok"] = not report["errors"]
        return report
    finally:
        pagefile.close(sync=False)


def _fsck_legacy(path, page_size, page_count, version, report):
    report["warnings"].append(
        f"format v{version} predates page checksums and generational "
        "slots; scan covers metadata structure only")
    pagefile = PageFile(path=path, page_size=page_size, checksums=False)
    pagefile._page_count = page_count
    try:
        frame = pagefile.read_page(0)
        _magic, _v, blob_len = _LEGACY.unpack_from(frame)
        per_page = page_size - 4
        if not 0 <= blob_len <= page_count * per_page:
            report["errors"].append(
                f"implausible metadata length {blob_len}")
            return report
        chunks = [bytes(frame[_LEGACY.size:per_page])]
        (nxt,) = struct.unpack_from("<i", frame, page_size - 4)
        seen = {0}
        chain = []
        while nxt != -1:
            if nxt in seen or not 0 <= nxt < page_count:
                report["errors"].append(
                    f"metadata chain broken at page {nxt}")
                return report
            seen.add(nxt)
            chain.append(nxt)
            frame = pagefile.read_page(nxt)
            chunks.append(bytes(frame[:per_page]))
            (nxt,) = struct.unpack_from("<i", frame, page_size - 4)
        blob = b"".join(chunks)[:blob_len]
        report["slots"].append({"slot": 0, "status": "valid",
                                "chain_pages": len(chain)})
        try:
            meta = _walk_blob(blob, version)
        except (struct.error, UnicodeDecodeError) as exc:
            report["errors"].append(
                f"metadata blob does not parse: {exc}")
            return report
        report["regions"] = [
            {"name": r["name"], "records": r["records"],
             "pages": len(r["pages"])} for r in meta["regions"]]
        referenced = set()
        for r in meta["regions"]:
            for page_id in r["pages"]:
                if not 0 <= page_id < page_count:
                    report["errors"].append(
                        f"{r['name']}: page {page_id} out of range "
                        f"0..{page_count - 1}")
                else:
                    referenced.add(page_id)
        report["pages_checked"] = len(referenced)
        _check_free_lists(meta, report)
        report["ok"] = not report["errors"]
        return report
    finally:
        pagefile.close(sync=False)
