"""I/O accounting shared by the pager and buffer pool."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOMetrics:
    """Counters of physical page traffic.

    ``sequential_reads``/``sequential_writes`` count operations whose
    page id immediately follows the previous physical access *of the
    same kind* (a modern enough proxy for a disk-arm-friendly access);
    everything else is random. Reads and writes keep separate last-page
    cursors — a read stream stays sequential even when interleaved with
    writes elsewhere in the file, matching how an OS-level read-ahead
    window or a log-structured write stream would behave. Synchronous
    writes are counted separately because the paper's experiments force
    them (``O_SYNC``) and they dominate the Figure 7 times.
    """

    reads: int = 0
    writes: int = 0
    sync_writes: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    sequential_writes: int = 0
    random_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    evictions: int = 0
    read_retries: int = 0
    checksum_failures: int = 0
    _last_read_page: int = -2
    _last_write_page: int = -2

    def record_read(self, page_id):
        """Count one physical page read."""
        self.reads += 1
        if page_id == self._last_read_page + 1:
            self.sequential_reads += 1
        else:
            self.random_reads += 1
        self._last_read_page = page_id

    def record_write(self, page_id, sync=False):
        """Count one physical page write (``sync`` = forced flush)."""
        self.writes += 1
        if sync:
            self.sync_writes += 1
        if page_id == self._last_write_page + 1:
            self.sequential_writes += 1
        else:
            self.random_writes += 1
        self._last_write_page = page_id

    def reset(self):
        """Zero every counter."""
        self.__init__()

    def snapshot(self):
        """Plain-dict copy for reporting."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "sync_writes": self.sync_writes,
            "sequential_reads": self.sequential_reads,
            "random_reads": self.random_reads,
            "sequential_writes": self.sequential_writes,
            "random_writes": self.random_writes,
            "buffer_hits": self.buffer_hits,
            "buffer_misses": self.buffer_misses,
            "evictions": self.evictions,
            "read_retries": self.read_retries,
            "checksum_failures": self.checksum_failures,
        }
