"""Disk cost model.

The paper's absolute disk numbers (hours, Figure 7 / Table 7) come from
a specific 2003 IDE drive with synchronous writes; this environment has
neither that drive nor the patience. The model below converts counted
page I/Os into seconds under explicit, documented constants so that the
*relative* behaviour — the quantity the reproduction targets — is
hardware-independent, while still producing human-readable time figures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Seek + transfer cost model for a single disk.

    Defaults approximate the paper's 40 GB IDE disk: ~9 ms average
    positioning (seek + half rotation), ~40 MB/s sequential transfer,
    4 KiB pages. A sequential access pays only transfer; a random access
    pays positioning + transfer; a synchronous write always pays
    positioning (the forced flush defeats write coalescing, which is why
    the paper's disk construction times are hours).
    """

    seek_ms: float = 9.0
    transfer_mb_per_s: float = 40.0
    page_size: int = 4096

    @property
    def transfer_ms(self):
        """Transfer time for one page, in milliseconds."""
        return self.page_size / (self.transfer_mb_per_s * 1024 * 1024) * 1000

    def cost_seconds(self, metrics):
        """Modeled seconds for an :class:`IOMetrics` trace."""
        ms = 0.0
        ms += metrics.sequential_reads * self.transfer_ms
        ms += metrics.random_reads * (self.seek_ms + self.transfer_ms)
        sync_random = min(metrics.sync_writes, metrics.random_writes)
        plain_random = metrics.random_writes - sync_random
        sync_seq = metrics.sync_writes - sync_random
        plain_seq = metrics.sequential_writes - sync_seq
        # Synchronous writes pay a positioning penalty even when the
        # page id is sequential (the intervening read traffic moved the
        # arm, and the flush cannot be coalesced).
        ms += (sync_random + sync_seq) * (self.seek_ms + self.transfer_ms)
        ms += plain_random * (self.seek_ms + self.transfer_ms)
        ms += plain_seq * self.transfer_ms
        return ms / 1000.0
