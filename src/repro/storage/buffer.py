"""Buffer manager with pluggable replacement policies.

The paper's Figure 8 observation — SPINE links overwhelmingly target
the *top* of the backbone — motivates its suggested buffering strategy:
"retain as much as possible of the top part of the Link Table in
memory". :class:`PinTopPolicy` implements exactly that (low page ids of
a protected region are evicted last); plain :class:`LRUPolicy` and
:class:`ClockPolicy` serve as the generic baselines for the buffering
ablation.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.exceptions import StorageError
from repro.obs.trace import get_tracer


class LRUPolicy:
    """Least-recently-used eviction."""

    name = "lru"

    def __init__(self):
        self._order = OrderedDict()

    def touch(self, page_id):
        """Mark ``page_id`` most recently used."""
        self._order.pop(page_id, None)
        self._order[page_id] = True

    def evict(self):
        if not self._order:
            raise StorageError("no page to evict")
        page_id, _ = self._order.popitem(last=False)
        return page_id

    def forget(self, page_id):
        """Drop ``page_id`` from consideration (page discarded)."""
        self._order.pop(page_id, None)


class ClockPolicy:
    """Second-chance (CLOCK) eviction."""

    name = "clock"

    def __init__(self):
        self._ref = OrderedDict()  # page -> referenced bit

    def touch(self, page_id):
        """Set the page's referenced bit."""
        if page_id in self._ref:
            self._ref[page_id] = True
        else:
            self._ref[page_id] = True

    def evict(self):
        if not self._ref:
            raise StorageError("no page to evict")
        while True:
            page_id, referenced = next(iter(self._ref.items()))
            self._ref.pop(page_id)
            if referenced:
                self._ref[page_id] = False  # second chance, move to tail
            else:
                return page_id

    def forget(self, page_id):
        """Drop ``page_id`` from consideration (page discarded)."""
        self._ref.pop(page_id, None)


class PinTopPolicy:
    """The paper's SPINE-specific policy: prefer to keep a protected
    set of pages (the top of the Link Table) resident; everything else
    — and, under extreme pressure, the protected pages themselves,
    newest first — evicts LRU.

    Parameters
    ----------
    protected_pages:
        A set of page ids to protect. The caller may keep mutating it
        (the disk index adds the first pages of its Link Table as they
        are allocated).
    """

    name = "pintop"

    def __init__(self, protected_pages=None):
        self.protected_pages = (protected_pages
                                if protected_pages is not None else set())
        self._lru = OrderedDict()
        self._protected = {}  # resident protected pages (insertion order)

    def touch(self, page_id):
        if page_id in self.protected_pages:
            self._protected[page_id] = True
            self._lru.pop(page_id, None)
        else:
            self._lru.pop(page_id, None)
            self._lru[page_id] = True

    def evict(self):
        if self._lru:
            page_id, _ = self._lru.popitem(last=False)
            return page_id
        if self._protected:
            page_id, _ = self._protected.popitem()  # newest protected
            return page_id
        raise StorageError("no page to evict")

    def forget(self, page_id):
        self._lru.pop(page_id, None)
        self._protected.pop(page_id, None)


class BufferPool:
    """A bounded write-back cache of pages over a :class:`PageFile`.

    ``get(page_id)`` returns the cached ``bytearray`` for the page,
    faulting it in (and evicting under pressure) as needed; call
    ``mark_dirty`` after mutating it. ``flush`` writes back all dirty
    pages. All physical traffic lands in ``pagefile.metrics``; hit/miss
    counters land there too.
    """

    def __init__(self, pagefile, capacity, policy=None):
        if capacity <= 0:
            raise StorageError("buffer capacity must be positive")
        self.pagefile = pagefile
        self.capacity = capacity
        self.policy = policy if policy is not None else LRUPolicy()
        self._frames = {}  # page_id -> bytearray
        self._dirty = set()

    def __len__(self):
        return len(self._frames)

    def get(self, page_id, load=True):
        """Return the buffered page, faulting it in if necessary.

        ``load=False`` skips the physical read for pages known to be
        fresh allocations (their content starts zeroed).
        """
        metrics = self.pagefile.metrics
        frame = self._frames.get(page_id)
        if frame is not None:
            metrics.buffer_hits += 1
            self.policy.touch(page_id)
            return frame
        metrics.buffer_misses += 1
        # Attribute the fault to the traced query that caused it (the
        # active span of :mod:`repro.obs.trace`, if any). ``physical``
        # distinguishes real page reads from fresh-allocation faults.
        span = get_tracer().active
        if span is not None:
            span.event("page-fetch", page=page_id, physical=load)
        if len(self._frames) >= self.capacity:
            self._evict_one()
        if load:
            frame = self.pagefile.read_page(page_id)
        else:
            frame = bytearray(self.pagefile.page_size)
        self._frames[page_id] = frame
        self.policy.touch(page_id)
        return frame

    def mark_dirty(self, page_id):
        """Record that the resident page was mutated."""
        if page_id not in self._frames:
            raise StorageError(f"page {page_id} not resident")
        self._dirty.add(page_id)

    def _evict_one(self):
        victim = self.policy.evict()
        frame = self._frames.pop(victim)
        self.pagefile.metrics.evictions += 1
        if victim in self._dirty:
            self._dirty.discard(victim)
            self.pagefile.write_page(victim, frame)

    def flush(self):
        """Write back every dirty page (ascending id: one arm sweep)."""
        for page_id in sorted(self._dirty):
            self.pagefile.write_page(page_id, self._frames[page_id])
        self._dirty.clear()

    def clear(self):
        """Flush and drop every frame (cold-cache reset)."""
        self.flush()
        for page_id in list(self._frames):
            self.policy.forget(page_id)
        self._frames.clear()
