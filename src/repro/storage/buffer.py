"""Buffer manager with pluggable replacement policies.

The paper's Figure 8 observation — SPINE links overwhelmingly target
the *top* of the backbone — motivates its suggested buffering strategy:
"retain as much as possible of the top part of the Link Table in
memory". :class:`PinTopPolicy` implements exactly that (low page ids of
a protected region are evicted last); plain :class:`LRUPolicy` and
:class:`ClockPolicy` serve as the generic baselines for the buffering
ablation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager

from repro.exceptions import StorageError
from repro.obs.trace import get_tracer
from repro.storage.failpoints import get_failpoints

_FAILPOINTS = get_failpoints()


class ReadWriteLock:
    """A writer-preferring shared/exclusive lock.

    Any number of readers may hold the lock together; a writer holds it
    alone. Waiting writers block new readers so a steady query stream
    cannot starve ``extend``. Neither side is reentrant — acquire once
    per thread, at the public entry point.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self):
        """Block until no writer holds or awaits the lock, then enter
        as one more reader."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self):
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self):
        """Block until the lock is completely free, then hold it
        exclusively."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self):
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` — shared access."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` — exclusive access."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()


class _NullLatch:
    """Shared no-op stand-in for the pool latch when single-threaded."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_LATCH = _NullLatch()


class LRUPolicy:
    """Least-recently-used eviction."""

    name = "lru"

    def __init__(self):
        self._order = OrderedDict()

    def touch(self, page_id):
        """Mark ``page_id`` most recently used."""
        self._order.pop(page_id, None)
        self._order[page_id] = True

    def evict(self):
        if not self._order:
            raise StorageError("no page to evict")
        page_id, _ = self._order.popitem(last=False)
        return page_id

    def forget(self, page_id):
        """Drop ``page_id`` from consideration (page discarded)."""
        self._order.pop(page_id, None)


class ClockPolicy:
    """Second-chance (CLOCK) eviction."""

    name = "clock"

    def __init__(self):
        self._ref = OrderedDict()  # page -> referenced bit

    def touch(self, page_id):
        """Set the page's referenced bit."""
        if page_id in self._ref:
            self._ref[page_id] = True
        else:
            self._ref[page_id] = True

    def evict(self):
        if not self._ref:
            raise StorageError("no page to evict")
        while True:
            page_id, referenced = next(iter(self._ref.items()))
            self._ref.pop(page_id)
            if referenced:
                self._ref[page_id] = False  # second chance, move to tail
            else:
                return page_id

    def forget(self, page_id):
        """Drop ``page_id`` from consideration (page discarded)."""
        self._ref.pop(page_id, None)


class PinTopPolicy:
    """The paper's SPINE-specific policy: prefer to keep a protected
    set of pages (the top of the Link Table) resident; everything else
    — and, under extreme pressure, the protected pages themselves,
    newest first — evicts LRU.

    Parameters
    ----------
    protected_pages:
        A set of page ids to protect. The caller may keep mutating it
        (the disk index adds the first pages of its Link Table as they
        are allocated).
    """

    name = "pintop"

    def __init__(self, protected_pages=None):
        self.protected_pages = (protected_pages
                                if protected_pages is not None else set())
        self._lru = OrderedDict()
        self._protected = {}  # resident protected pages (insertion order)

    def touch(self, page_id):
        if page_id in self.protected_pages:
            self._protected[page_id] = True
            self._lru.pop(page_id, None)
        else:
            self._lru.pop(page_id, None)
            self._lru[page_id] = True

    def evict(self):
        # A page touched *before* its id entered the (mutable)
        # protected set still sits in the plain LRU dict; reclassify
        # such late-protected pages instead of evicting them.
        while self._lru:
            page_id, _ = self._lru.popitem(last=False)
            if page_id in self.protected_pages:
                self._protected[page_id] = True
                continue
            return page_id
        if self._protected:
            page_id, _ = self._protected.popitem()  # newest protected
            return page_id
        raise StorageError("no page to evict")

    def forget(self, page_id):
        self._lru.pop(page_id, None)
        self._protected.pop(page_id, None)


class BufferPool:
    """A bounded write-back cache of pages over a :class:`PageFile`.

    ``get(page_id)`` returns the cached ``bytearray`` for the page,
    faulting it in (and evicting under pressure) as needed; call
    ``mark_dirty`` after mutating it. ``flush`` writes back all dirty
    pages. All physical traffic lands in ``pagefile.metrics``; hit/miss
    counters land there too.

    Concurrency. The pool starts single-threaded (zero locking on the
    hot path, preserving the cost discipline of the experiments). A
    caller that wants parallel readers calls
    :meth:`enable_thread_safety`, after which every structural
    operation runs under an internal latch. Independently of the latch,
    :attr:`rwlock` is the advisory shared/exclusive lock query and
    mutation *paths* coordinate through (readers: queries; writer:
    ``extend`` / checkpoint — see :class:`ReadWriteLock`), and
    :meth:`pin` / :meth:`pinned` keep a frame resident while a reader
    still unpacks records from it, so parallel queries cannot evict
    each other's in-flight frames.
    """

    def __init__(self, pagefile, capacity, policy=None,
                 thread_safe=False):
        if capacity <= 0:
            raise StorageError("buffer capacity must be positive")
        self.pagefile = pagefile
        self.capacity = capacity
        self.policy = policy if policy is not None else LRUPolicy()
        self._frames = {}  # page_id -> bytearray
        self._dirty = set()
        self._pins = {}    # page_id -> pin count
        #: Advisory query-path/mutation-path lock (see class docstring).
        self.rwlock = ReadWriteLock()
        self._latch = _NULL_LATCH
        if thread_safe:
            self.enable_thread_safety()

    @property
    def thread_safe(self):
        """True once :meth:`enable_thread_safety` has been called."""
        return self._latch is not _NULL_LATCH

    def enable_thread_safety(self):
        """Switch the internal latch on (idempotent; never reverts).

        The latch is reentrant, so :meth:`pinned` can compose atomically
        with :meth:`get`. The swap runs under the pool's write lock so
        no in-flight reader can straddle the transition — consequently
        this must not be called by a thread already holding
        :attr:`rwlock` (it is non-reentrant).
        """
        if self._latch is not _NULL_LATCH:
            return self
        with self.rwlock.write_locked():
            if self._latch is _NULL_LATCH:
                self._latch = threading.RLock()
        return self

    def __len__(self):
        return len(self._frames)

    def stats(self):
        """Point-in-time health readings for introspection surfaces
        (:mod:`repro.obs.health`): residency, pins, dirty pages and
        the cumulative hit rate from the page file's
        :class:`~repro.storage.metrics.IOMetrics`."""
        with self._latch:
            metrics = self.pagefile.metrics
            hits = metrics.buffer_hits
            misses = metrics.buffer_misses
            looked_up = hits + misses
            return {
                "capacity": self.capacity,
                "resident_pages": len(self._frames),
                "pinned_pages": len(self._pins),
                "dirty_pages": len(self._dirty),
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / looked_up if looked_up else 0.0,
                "evictions": metrics.evictions,
                "thread_safe": self.thread_safe,
            }

    def get(self, page_id, load=True):
        """Return the buffered page, faulting it in if necessary.

        ``load=False`` skips the physical read for pages known to be
        fresh allocations (their content starts zeroed).
        """
        with self._latch:
            metrics = self.pagefile.metrics
            frame = self._frames.get(page_id)
            if frame is not None:
                metrics.buffer_hits += 1
                self.policy.touch(page_id)
                return frame
            metrics.buffer_misses += 1
            # Attribute the fault to the traced query that caused it
            # (the active span of :mod:`repro.obs.trace`, if any).
            # ``physical`` distinguishes real page reads from
            # fresh-allocation faults.
            span = get_tracer().active
            if span is not None:
                span.event("page-fetch", page=page_id, physical=load)
            if len(self._frames) >= self.capacity:
                self._evict_one()
            if load:
                frame = self.pagefile.read_page(page_id)
            else:
                frame = bytearray(self.pagefile.page_size)
            self._frames[page_id] = frame
            self.policy.touch(page_id)
            return frame

    # -- pinning -------------------------------------------------------

    def pin(self, page_id):
        """Exempt a resident page from eviction (counted; nestable)."""
        with self._latch:
            if page_id not in self._frames:
                raise StorageError(f"page {page_id} not resident")
            self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id):
        """Drop one pin; the page becomes evictable at zero pins."""
        with self._latch:
            count = self._pins.get(page_id, 0)
            if count <= 0:
                raise StorageError(f"page {page_id} is not pinned")
            if count == 1:
                del self._pins[page_id]
            else:
                self._pins[page_id] = count - 1

    def pin_count(self, page_id):
        """Current pin count of ``page_id`` (0 when unpinned)."""
        return self._pins.get(page_id, 0)

    @contextmanager
    def pinned(self, page_id, load=True):
        """Fault the page in, pin it, yield the frame, unpin on exit.

        The get-and-pin pair runs under one latch acquisition, so a
        concurrent reader's eviction cannot slip between them.
        """
        with self._latch:
            frame = self.get(page_id, load=load)
            self._pins[page_id] = self._pins.get(page_id, 0) + 1
        try:
            yield frame
        finally:
            self.unpin(page_id)

    # -- mutation ------------------------------------------------------

    def mark_dirty(self, page_id):
        """Record that the resident page was mutated."""
        with self._latch:
            if page_id not in self._frames:
                raise StorageError(f"page {page_id} not resident")
            self._dirty.add(page_id)

    def discard(self, page_id):
        """Drop a clean, unpinned resident frame without writing it
        back (used when a page's identity is retired, e.g. after a
        copy-on-write shadow). A no-op for non-resident pages."""
        with self._latch:
            if page_id not in self._frames:
                return
            if self._pins.get(page_id, 0) or page_id in self._dirty:
                raise StorageError(
                    f"cannot discard page {page_id}: pinned or dirty")
            del self._frames[page_id]
            self.policy.forget(page_id)

    def _evict_one(self):
        # Pinned pages are not eviction candidates: set them aside,
        # take the policy's next victim, then restore the recency of
        # everything skipped.
        skipped = []
        victim = None
        try:
            while True:
                candidate = self.policy.evict()
                if self._pins.get(candidate, 0):
                    skipped.append(candidate)
                    continue
                victim = candidate
                break
        except StorageError:
            # The policy ran dry before yielding an unpinned victim.
            for page_id in skipped:
                self.policy.touch(page_id)
            if skipped:
                raise StorageError(
                    "cannot evict: every resident page is pinned"
                ) from None
            raise
        for page_id in skipped:
            self.policy.touch(page_id)
        if _FAILPOINTS.active:
            # Fires *before* the frame is dropped; an injected fault
            # leaves the pool consistent (the victim stays resident and
            # is restored in the policy).
            try:
                _FAILPOINTS.fire("buffer.evict", page=victim)
            except BaseException:
                self.policy.touch(victim)
                raise
        frame = self._frames[victim]
        if victim in self._dirty:
            # Write back *before* dropping the frame: a failed
            # write-back must leave the page resident and dirty, or a
            # transient fault silently loses committed mutations (the
            # page would be re-read from its stale on-disk bytes).
            try:
                self.pagefile.write_page(victim, frame)
            except BaseException:
                self.policy.touch(victim)
                raise
            self._dirty.discard(victim)
        del self._frames[victim]
        self.pagefile.metrics.evictions += 1

    def flush(self):
        """Write back every dirty page (ascending id: one arm sweep)."""
        with self._latch:
            for page_id in sorted(self._dirty):
                self.pagefile.write_page(page_id, self._frames[page_id])
            self._dirty.clear()

    def clear(self):
        """Flush and drop every frame (cold-cache reset).

        Pinned frames are a caller bug at this point and are reported
        rather than silently dropped.
        """
        with self._latch:
            if self._pins:
                raise StorageError(
                    f"cannot clear: {len(self._pins)} page(s) still "
                    "pinned")
            self.flush()
            for page_id in list(self._frames):
                self.policy.forget(page_id)
            self._frames.clear()
