"""Exception hierarchy for the SPINE reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AlphabetError(ReproError):
    """A character or code is not part of the alphabet in use."""


class ConstructionError(ReproError):
    """An index could not be built (bad input, exhausted resources)."""


class SearchError(ReproError):
    """A search request was malformed (e.g. empty pattern where disallowed)."""


class ServiceClosedError(ReproError, RuntimeError):
    """An operation was submitted to a closed serving front end.

    Raised by :class:`repro.serve.QueryService` both for calls made
    after :meth:`~repro.serve.QueryService.close` and for in-flight
    batches that lose their worker pool to a concurrent ``close()`` —
    the executor's raw ``RuntimeError: cannot schedule new futures
    after shutdown`` is translated to this structured error.  Derives
    from ``RuntimeError`` as well, so callers that predate the class
    keep working.
    """


class DeadlineExceededError(ReproError):
    """A query ran past its deadline and was cooperatively cancelled.

    Raised from a traversal/scan checkpoint (see
    :mod:`repro.resilience`) the moment the expiry is noticed — the
    query does *not* run to completion first. Carries the ``op`` that
    was cancelled so callers and the slow-query log can route without
    parsing the message.
    """

    def __init__(self, message, op=None):
        super().__init__(message)
        self.op = op


class OverloadedError(ReproError):
    """The serving front end shed this request instead of queueing it.

    Raised by :class:`repro.resilience.AdmissionController` when every
    worker is busy and the bounded admission queue is full. The request
    did no index work at all; retrying after backoff is safe.
    """


class CircuitOpenError(OverloadedError):
    """A per-shard circuit breaker is open; the shard was not queried.

    Derives from :class:`OverloadedError` so callers can treat "try
    again later" uniformly. Carries the breaker ``name`` (e.g.
    ``"shard-3"``) and the seconds until the breaker will next admit a
    half-open probe (``retry_after``, ``None`` when unknown).
    """

    def __init__(self, message, name=None, retry_after=None):
        super().__init__(message)
        self.name = name
        self.retry_after = retry_after


class StorageError(ReproError):
    """The disk substrate failed (bad page id, buffer misuse, closed store)."""


class RetryExhaustedError(StorageError):
    """A transient storage fault persisted through every retry attempt.

    Raised by the read path of :class:`repro.storage.pager.PageFile`
    (and by :meth:`repro.resilience.RetryPolicy.call` generally) once
    the retry budget is spent. Carries the total ``attempts`` made and
    the failing ``site`` so chaos tests and operators can verify the
    budget was honoured; the last underlying fault is chained as
    ``__cause__``.
    """

    def __init__(self, message, attempts=None, site=None):
        super().__init__(message)
        self.attempts = attempts
        self.site = site


class IntegrityError(StorageError):
    """On-disk data failed an integrity check (checksums, torn metadata).

    The distinguishing property of this family is that the *bytes on
    disk* are wrong — not the request.  Callers that want to route
    corruption to a recovery path (fsck, restore from the previous
    checkpoint generation) can catch :class:`IntegrityError` while still
    treating plain :class:`StorageError` as a programming error.
    """


class CorruptPageError(IntegrityError):
    """A page's stored CRC did not match its contents.

    Carries enough structure for operational tooling: the failing
    ``page_id``, the checkpoint ``generation`` stamped on the page when
    it was last written (``None`` when the trailer itself is
    unreadable), and the backing ``path``.
    """

    def __init__(self, message, page_id=None, generation=None, path=None):
        super().__init__(message)
        self.page_id = page_id
        self.generation = generation
        self.path = path


class CorpusError(ReproError):
    """A named corpus sequence could not be produced."""


class VerificationError(ReproError):
    """An index violated one of its structural invariants.

    Carries the traversal ``layer`` the violation was observed on
    (``"memory"``, ``"packed"``, ``"disk"``, ``"sharded"``, or the
    offending class name when the layer is not verifiable at all) and a
    short ``invariant`` slug, so tooling can route failures without
    parsing the message.
    """

    def __init__(self, message, layer=None, invariant=None):
        super().__init__(message)
        self.layer = layer
        self.invariant = invariant
