"""Exception hierarchy for the SPINE reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AlphabetError(ReproError):
    """A character or code is not part of the alphabet in use."""


class ConstructionError(ReproError):
    """An index could not be built (bad input, exhausted resources)."""


class SearchError(ReproError):
    """A search request was malformed (e.g. empty pattern where disallowed)."""


class StorageError(ReproError):
    """The disk substrate failed (bad page id, buffer misuse, closed store)."""


class CorpusError(ReproError):
    """A named corpus sequence could not be produced."""


class VerificationError(ReproError):
    """An index violated one of its structural invariants."""
