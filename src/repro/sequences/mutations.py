"""Sequence evolution: derive related sequences from an ancestor.

The paper's cross-genome experiments rely on evolutionary relatedness
(conserved segments at high identity inside diverged backgrounds).
These helpers simulate that: point mutations, insertions/deletions,
block rearrangements — deterministic per seed, so workloads and
examples are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import alphabet_for
from repro.exceptions import ReproError


def point_mutate(text, rate, seed=0, alphabet=None):
    """Substitute each character independently with probability
    ``rate`` (uniformly among the other alphabet symbols)."""
    if not 0 <= rate <= 1:
        raise ReproError("rate must be in [0, 1]")
    if not text:
        return text
    if alphabet is None:
        alphabet = alphabet_for(text)
    rng = np.random.default_rng(seed)
    symbols = alphabet.symbols
    out = list(text)
    hits = np.nonzero(rng.random(len(out)) < rate)[0]
    for i in hits:
        i = int(i)
        choices = [s for s in symbols if s != out[i]]
        if choices:
            out[i] = choices[int(rng.integers(0, len(choices)))]
    return "".join(out)


def indel_mutate(text, rate, seed=0, alphabet=None, max_indel=5):
    """Apply small insertions/deletions at per-position probability
    ``rate`` (half insertions, half deletions, lengths 1..max_indel)."""
    if not 0 <= rate <= 1:
        raise ReproError("rate must be in [0, 1]")
    if max_indel < 1:
        raise ReproError("max_indel must be >= 1")
    if not text:
        return text
    if alphabet is None:
        alphabet = alphabet_for(text)
    rng = np.random.default_rng(seed)
    symbols = alphabet.symbols
    out = []
    i = 0
    n = len(text)
    while i < n:
        if rng.random() < rate:
            length = int(rng.integers(1, max_indel + 1))
            if rng.random() < 0.5:
                # Insertion before position i.
                out.extend(symbols[int(rng.integers(0, len(symbols)))]
                           for _ in range(length))
            else:
                i += length  # deletion
                continue
        if i < n:
            out.append(text[i])
        i += 1
    return "".join(out)


def rearrange(text, block_length, seed=0, swaps=1):
    """Swap ``swaps`` pairs of non-overlapping blocks of
    ``block_length`` characters (a crude translocation model)."""
    if block_length < 1:
        raise ReproError("block_length must be >= 1")
    if swaps < 0:
        raise ReproError("swaps must be >= 0")
    n = len(text)
    if n < 4 * block_length or swaps == 0:
        return text
    rng = np.random.default_rng(seed)
    out = list(text)
    for _ in range(swaps):
        a = int(rng.integers(0, n - 2 * block_length))
        b = int(rng.integers(a + block_length, n - block_length))
        out[a:a + block_length], out[b:b + block_length] = (
            out[b:b + block_length], out[a:a + block_length])
    return "".join(out)


def derive_sequence(ancestor, seed=0, snp_rate=0.03, indel_rate=0.002,
                    rearrangement_blocks=1, block_length=1000,
                    alphabet=None):
    """A descendant of ``ancestor``: SNPs + indels + rearrangements.

    The composition mirrors what cross-species genome pairs look like
    to an aligner: mostly-conserved stretches at ``1 - snp_rate``
    identity, occasional length changes, and a few large-scale block
    moves. Deterministic per seed.
    """
    if alphabet is None and ancestor:
        alphabet = alphabet_for(ancestor)
    derived = point_mutate(ancestor, snp_rate, seed=seed,
                           alphabet=alphabet)
    derived = indel_mutate(derived, indel_rate, seed=seed + 1,
                           alphabet=alphabet)
    block = min(block_length, max(1, len(derived) // 8))
    derived = rearrange(derived, block, seed=seed + 2,
                        swaps=rearrangement_blocks)
    return derived
