"""Minimal FASTA reader/writer.

The paper's tooling world (MUMmer et al.) speaks FASTA; examples and the
experiment harness use these helpers to persist and reload pseudo-genomes
so that runs are reproducible from on-disk artifacts.
"""

from __future__ import annotations

from repro.exceptions import ReproError


def read_fasta(path):
    """Read a FASTA file into a list of ``(header, sequence)`` pairs.

    Headers are returned without the leading ``>``; sequence lines are
    concatenated with whitespace stripped. Raises :class:`ReproError`
    on malformed input (sequence data before any header).
    """
    records = []
    header = None
    chunks = []
    with open(path, "r", encoding="ascii") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    records.append((header, "".join(chunks)))
                header = line[1:].strip()
                chunks = []
            else:
                if header is None:
                    raise ReproError(
                        f"{path}: sequence data before first FASTA header"
                    )
                chunks.append(line)
    if header is not None:
        records.append((header, "".join(chunks)))
    return records


def write_fasta(path, records, line_width=70):
    """Write ``(header, sequence)`` pairs to ``path`` in FASTA format."""
    if line_width <= 0:
        raise ReproError("line_width must be positive")
    with open(path, "w", encoding="ascii") as handle:
        for header, sequence in records:
            handle.write(f">{header}\n")
            for i in range(0, len(sequence), line_width):
                handle.write(sequence[i:i + line_width])
                handle.write("\n")
