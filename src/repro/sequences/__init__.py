"""Sequence substrate: synthetic genomes/proteomes, FASTA I/O, named corpus.

The paper benchmarks on real genomes fetched from public archives. This
environment has no network access and pure-Python index construction does
not reach 10^7-10^8 characters in reasonable time, so the corpus module
provides deterministic *pseudo-genomes*: synthetic strings whose repeat
structure mimics genomic DNA (the property that actually drives every
quantity the paper measures), at scaled-down lengths that keep the paper's
length ratios. See DESIGN.md section 2 for the substitution rationale.
"""

from repro.sequences.generator import (
    MarkovSequenceGenerator,
    RepeatPlanter,
    SequenceProfile,
    generate_dna,
    generate_protein,
    uniform_random,
)
from repro.sequences.fasta import read_fasta, write_fasta
from repro.sequences.streams import (
    iter_fasta,
    stream_build,
    stream_build_generalized,
)
from repro.sequences.mutations import (
    derive_sequence,
    indel_mutate,
    point_mutate,
    rearrange,
)
from repro.sequences.corpus import (
    CORPUS_PROFILES,
    CorpusSpec,
    corpus_names,
    corpus_spec,
    load_corpus_sequence,
)

__all__ = [
    "MarkovSequenceGenerator",
    "RepeatPlanter",
    "SequenceProfile",
    "generate_dna",
    "generate_protein",
    "uniform_random",
    "read_fasta",
    "write_fasta",
    "iter_fasta",
    "stream_build",
    "stream_build_generalized",
    "derive_sequence",
    "indel_mutate",
    "point_mutate",
    "rearrange",
    "CORPUS_PROFILES",
    "CorpusSpec",
    "corpus_names",
    "corpus_spec",
    "load_corpus_sequence",
]
