"""Synthetic sequence generation with genome-like repeat structure.

Real genomes are far from i.i.d. random: they carry tandem repeats,
interspersed repeat families (SINE/LINE-like), and locally biased base
composition. Those repeats are what give suffix-based indexes their
interesting behaviour — they bound the SPINE label values (Table 3),
thin out the rib distribution (Table 4), and concentrate link
destinations upstream (Figure 8). An i.i.d. string would understate all
of them, so the generator layers:

1. an order-``k`` Markov background (:class:`MarkovSequenceGenerator`),
2. planted repeats (:class:`RepeatPlanter`): copies of earlier material
   re-inserted downstream with point mutations, mimicking repeat families.

Everything is deterministic given a seed (``numpy.random.Generator``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReproError


def uniform_random(length, alphabet, seed=0):
    """Uniform i.i.d. string over ``alphabet`` (baseline workload)."""
    if length < 0:
        raise ReproError("length must be non-negative")
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, alphabet.size, size=length)
    return alphabet.decode(codes.tolist())


class MarkovSequenceGenerator:
    """Order-``k`` Markov chain over an alphabet.

    The transition matrix is itself sampled (Dirichlet per context) from
    ``seed``, giving each synthetic genome a distinctive local composition
    the way real chromosomes have GC-content structure.

    Parameters
    ----------
    alphabet:
        An :class:`repro.alphabet.Alphabet`.
    order:
        Markov order ``k`` (0 = i.i.d. with biased frequencies).
    concentration:
        Dirichlet concentration; smaller = more skewed compositions.
    """

    def __init__(self, alphabet, order=2, concentration=2.0, seed=0):
        if order < 0:
            raise ReproError("Markov order must be >= 0")
        self.alphabet = alphabet
        self.order = order
        self.rng = np.random.default_rng(seed)
        size = alphabet.size
        contexts = size ** order
        self._transitions = self.rng.dirichlet(
            [concentration] * size, size=contexts
        )
        self._cum = np.cumsum(self._transitions, axis=1)
        self._size = size

    def generate_codes(self, length):
        """Generate ``length`` integer codes."""
        if length < 0:
            raise ReproError("length must be non-negative")
        size = self._size
        order = self.order
        out = np.empty(length, dtype=np.int64)
        uniforms = self.rng.random(length)
        context = 0
        context_mod = size ** order if order else 1
        cum = self._cum
        for i in range(length):
            row = cum[context]
            code = int(np.searchsorted(row, uniforms[i], side="right"))
            if code >= size:
                code = size - 1
            out[i] = code
            if order:
                context = (context * size + code) % context_mod
        return out

    def generate(self, length):
        """Generate a text string of ``length`` characters."""
        return self.alphabet.decode(self.generate_codes(length).tolist())


@dataclass
class RepeatPlanter:
    """Re-inserts mutated copies of earlier sequence downstream.

    Parameters
    ----------
    repeat_fraction:
        Fraction of the final sequence length produced by repeat copies
        rather than fresh background (human chromosomes are ~50 %
        repetitive; bacterial genomes less, ~10-15 %).
    family_length_range:
        (lo, hi) length of each repeat unit copied.
    mutation_rate:
        Per-character probability of a point substitution in a copy.
    tandem_probability:
        Probability a planted copy is appended immediately (tandem) rather
        than after more background (interspersed).
    """

    repeat_fraction: float = 0.3
    family_length_range: tuple = (50, 2000)
    mutation_rate: float = 0.02
    tandem_probability: float = 0.25
    _rng: np.random.Generator = field(default=None, repr=False)

    def plant(self, background_codes, target_length, alphabet_size, rng):
        """Weave repeats into ``background_codes`` until ``target_length``.

        ``background_codes`` supplies fresh material; copies are drawn
        from the sequence already emitted, so repeats genuinely recur.
        Returns a numpy int64 array of exactly ``target_length`` codes.
        """
        if not 0 <= self.repeat_fraction < 1:
            raise ReproError("repeat_fraction must be in [0, 1)")
        out = []
        emitted = 0
        bg_pos = 0
        background = background_codes
        lo, hi = self.family_length_range

        def take_background(k):
            nonlocal bg_pos
            chunk = background[bg_pos:bg_pos + k]
            bg_pos += len(chunk)
            return chunk

        # Seed with enough background that copies have a source.
        seed_len = min(target_length, max(hi, 1000))
        chunk = take_background(seed_len)
        out.append(chunk)
        emitted += len(chunk)
        flat = None
        while emitted < target_length:
            if rng.random() < self.repeat_fraction:
                if flat is None or flat.shape[0] < emitted:
                    flat = np.concatenate(out)
                unit_len = int(rng.integers(lo, max(lo + 1, hi)))
                unit_len = min(unit_len, flat.shape[0],
                               target_length - emitted)
                if unit_len <= 0:
                    break
                start = int(rng.integers(0, flat.shape[0] - unit_len + 1))
                copy = flat[start:start + unit_len].copy()
                if self.mutation_rate > 0:
                    hits = rng.random(unit_len) < self.mutation_rate
                    n_hits = int(hits.sum())
                    if n_hits:
                        copy[hits] = rng.integers(0, alphabet_size,
                                                  size=n_hits)
                out.append(copy)
                emitted += unit_len
                if rng.random() >= self.tandem_probability:
                    gap = int(rng.integers(20, 500))
                    gap = min(gap, target_length - emitted)
                    if gap > 0:
                        chunk = take_background(gap)
                        if len(chunk) == 0:
                            break
                        out.append(chunk)
                        emitted += len(chunk)
                flat = None
            else:
                step = int(rng.integers(200, 2000))
                step = min(step, target_length - emitted)
                chunk = take_background(step)
                if len(chunk) == 0:
                    break
                out.append(chunk)
                emitted += len(chunk)
        result = np.concatenate(out)[:target_length]
        if result.shape[0] < target_length:
            # Background exhausted (extreme repeat_fraction): tile it.
            reps = -(-target_length // max(1, result.shape[0]))
            result = np.tile(result, reps)[:target_length]
        return result


@dataclass
class SequenceProfile:
    """Full recipe for one synthetic sequence."""

    length: int
    order: int = 2
    concentration: float = 2.0
    repeat_fraction: float = 0.3
    family_length_range: tuple = (50, 2000)
    mutation_rate: float = 0.02
    tandem_probability: float = 0.25

    def realize(self, alphabet, seed=0):
        """Produce the sequence string for this profile."""
        rng = np.random.default_rng(seed)
        markov = MarkovSequenceGenerator(
            alphabet, order=self.order, concentration=self.concentration,
            seed=rng.integers(0, 2**31),
        )
        # Generate slightly more background than needed; the planter
        # consumes background lazily.
        background = markov.generate_codes(self.length)
        planter = RepeatPlanter(
            repeat_fraction=self.repeat_fraction,
            family_length_range=self.family_length_range,
            mutation_rate=self.mutation_rate,
            tandem_probability=self.tandem_probability,
        )
        codes = planter.plant(background, self.length, alphabet.size, rng)
        return alphabet.decode(codes.tolist())


def generate_dna(length, seed=0, repeat_fraction=0.3):
    """Convenience: genome-like DNA string of ``length`` characters."""
    from repro.alphabet import dna_alphabet

    profile = SequenceProfile(length=length, repeat_fraction=repeat_fraction)
    return profile.realize(dna_alphabet(), seed=seed)


def generate_protein(length, seed=0, repeat_fraction=0.15):
    """Convenience: proteome-like residue string of ``length`` characters."""
    from repro.alphabet import protein_alphabet

    profile = SequenceProfile(
        length=length, repeat_fraction=repeat_fraction,
        family_length_range=(20, 400),
    )
    return profile.realize(protein_alphabet(), seed=seed)
