"""Streaming FASTA access and streaming index construction.

The online property of SPINE (Section 1.1) means an index can be built
without ever materializing the input: these helpers iterate FASTA
records lazily and feed an index chunk by chunk, which is how a
database-engine integration would ingest bulk loads.
"""

from __future__ import annotations

from repro.exceptions import ReproError


def iter_fasta(path, chunk_size=1 << 16):
    """Yield ``(header, sequence_chunk_iterator)`` pairs lazily.

    Each record's sequence arrives as an iterator of string chunks (at
    most ``chunk_size`` characters each, whitespace stripped), so
    arbitrarily large records never fully occupy memory. The chunk
    iterator of a record must be consumed (or abandoned) before
    advancing to the next record.
    """
    if chunk_size <= 0:
        raise ReproError("chunk_size must be positive")
    with open(path, "r", encoding="ascii") as handle:
        pending_header = None

        def read_chunks():
            nonlocal pending_header
            buffer = []
            buffered = 0
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                if line.startswith(">"):
                    pending_header = line[1:].strip()
                    break
                buffer.append(line)
                buffered += len(line)
                if buffered >= chunk_size:
                    yield "".join(buffer)
                    buffer = []
                    buffered = 0
            if buffer:
                yield "".join(buffer)

        # Find the first header.
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if not line.startswith(">"):
                raise ReproError(
                    f"{path}: sequence data before first FASTA header")
            pending_header = line[1:].strip()
            break
        while pending_header is not None:
            header = pending_header
            pending_header = None
            chunks = read_chunks()
            yield header, chunks
            # Drain any unconsumed chunks so the file position is at
            # the next record.
            for _ in chunks:
                pass


def stream_build(path, index, record=0, chunk_size=1 << 16,
                 progress=None):
    """Build ``index`` from FASTA record ``record`` of ``path``,
    streaming.

    ``index`` is any online index with ``extend`` (a
    :class:`~repro.core.index.SpineIndex`, a
    :class:`~repro.disk.spine_disk.DiskSpineIndex`, ...).
    ``progress``, when given, is called with the running character
    count after each chunk. Returns the index.
    """
    for i, (header, chunks) in enumerate(iter_fasta(path,
                                                    chunk_size)):
        if i != record:
            continue
        total = 0
        for chunk in chunks:
            index.extend(chunk)
            total += len(chunk)
            if progress is not None:
                progress(total)
        return index
    raise ReproError(f"{path}: no FASTA record #{record}")


def stream_build_generalized(path, gindex, chunk_size=1 << 16):
    """Add every record of a FASTA file to a generalized index.

    Records are named by their FASTA headers. Returns the per-record
    string ids in file order.
    """
    from repro.alphabet import SEPARATOR_CHAR

    sids = []
    for header, chunks in iter_fasta(path, chunk_size):
        # The generalized index separates members itself; we must feed
        # a member's chunks to the *same* member. add_string starts a
        # member; extend continues it.
        first = next(chunks, "")
        if SEPARATOR_CHAR in first:
            raise ReproError("sequence contains the separator symbol")
        sid = gindex.add_string(first, name=header)
        extra = 0
        for chunk in chunks:
            gindex.index.extend(chunk)
            extra += len(chunk)
        if extra:
            gindex._lengths[sid] += extra
        sids.append(sid)
    return sids
