"""Named pseudo-genome corpus mirroring the paper's evaluation strings.

The paper evaluates on four DNA genomes and three proteomes:

=========  ==========================  ============
Name       Paper description           Paper length
=========  ==========================  ============
ECO        E.coli genome               3.5 Mbp
CEL        C.elegans genome            15.5 Mbp
HC21       Human chromosome 21         28.5 Mbp
HC19       Human chromosome 19         57.5 Mbp
ECO-R      E.coli residues (protein)   1.5 M
YEAST-R    Yeast residues              3.1 M
DROS-R     Drosophila residues         7.5 M
=========  ==========================  ============

Real sequences are unavailable offline and pure-Python construction cannot
reach 10^7-10^8 characters, so each name maps to a deterministic synthetic
sequence (seeded by the name) whose *length ratios* match the paper and
whose repeat structure approximates the organism class (bacterial genomes
lightly repetitive, human chromosomes heavily repetitive). The global
``scale`` parameter is the number of generated characters per paper-Mbp;
the default of 17_000 keeps the full Figure-6 sweep tractable in Python.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.alphabet import dna_alphabet, protein_alphabet
from repro.exceptions import CorpusError
from repro.sequences.generator import SequenceProfile

#: Environment variable naming a directory of real FASTA sequences.
CORPUS_DIR_ENV = "REPRO_CORPUS_DIR"

#: Default number of synthetic characters generated per paper megabase.
DEFAULT_SCALE = 17_000


@dataclass(frozen=True)
class CorpusSpec:
    """Recipe for one named corpus sequence."""

    name: str
    description: str
    paper_mbp: float
    kind: str  # "dna" or "protein"
    repeat_fraction: float
    order: int
    seed: int

    def length_at(self, scale):
        """Scaled sequence length for ``scale`` chars per paper-Mbp."""
        return max(1, int(round(self.paper_mbp * scale)))


CORPUS_PROFILES = {
    "ECO": CorpusSpec("ECO", "E.coli genome (3.5 Mbp)", 3.5, "dna",
                      repeat_fraction=0.12, order=3, seed=101),
    "CEL": CorpusSpec("CEL", "C.elegans genome (15.5 Mbp)", 15.5, "dna",
                      repeat_fraction=0.25, order=3, seed=202),
    "HC21": CorpusSpec("HC21", "Human chromosome 21 (28.5 Mbp)", 28.5, "dna",
                       repeat_fraction=0.45, order=3, seed=303),
    "HC19": CorpusSpec("HC19", "Human chromosome 19 (57.5 Mbp)", 57.5, "dna",
                       repeat_fraction=0.45, order=3, seed=404),
    "ECO-R": CorpusSpec("ECO-R", "E.coli residues (1.5 M)", 1.5, "protein",
                        repeat_fraction=0.10, order=1, seed=505),
    "YEAST-R": CorpusSpec("YEAST-R", "Yeast residues (3.1 M)", 3.1, "protein",
                          repeat_fraction=0.12, order=1, seed=606),
    "DROS-R": CorpusSpec("DROS-R", "Drosophila residues (7.5 M)", 7.5,
                         "protein", repeat_fraction=0.15, order=1, seed=707),
}

_CACHE = {}


def _load_real_sequence(spec, scale):
    """Real-genome override from ``REPRO_CORPUS_DIR`` (or ``None``).

    Accepts ``<NAME>.fa`` / ``<NAME>.fasta``; concatenates all records,
    uppercases, drops characters outside the target alphabet (real
    FASTA files carry N runs and IUPAC codes), and truncates to the
    scaled length.
    """
    directory = os.environ.get(CORPUS_DIR_ENV)
    if not directory:
        return None
    from repro.sequences.fasta import read_fasta

    path = None
    for suffix in (".fa", ".fasta"):
        candidate = os.path.join(directory, spec.name + suffix)
        if os.path.exists(candidate):
            path = candidate
            break
    if path is None:
        return None
    alphabet = dna_alphabet() if spec.kind == "dna" \
        else protein_alphabet()
    allowed = set(alphabet.symbols)
    raw = "".join(seq for _, seq in read_fasta(path)).upper()
    cleaned = "".join(ch for ch in raw if ch in allowed)
    if not cleaned:
        raise CorpusError(f"{path}: no usable characters for "
                          f"{spec.kind} alphabet")
    return cleaned[:spec.length_at(scale)]


def corpus_names(kind=None):
    """Names of available corpus sequences, optionally filtered by kind."""
    return [name for name, spec in CORPUS_PROFILES.items()
            if kind is None or spec.kind == kind]


def corpus_spec(name):
    """Look up the :class:`CorpusSpec` for ``name``."""
    try:
        return CORPUS_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(CORPUS_PROFILES))
        raise CorpusError(f"unknown corpus sequence {name!r}; "
                          f"known: {known}") from None


def load_corpus_sequence(name, scale=DEFAULT_SCALE):
    """Materialize the named pseudo-genome at the given scale.

    Results are memoized per ``(name, scale)`` within the process, so the
    experiment harness can reference the same sequence repeatedly without
    regenerating it.

    Real data: when the ``REPRO_CORPUS_DIR`` environment variable points
    at a directory containing ``<NAME>.fa`` / ``<NAME>.fasta`` files
    (e.g. the actual E.coli genome as ``ECO.fa``), the real sequence is
    used instead of the synthetic one — truncated to the scaled length
    so the experiment runtimes stay controlled; set the scale to
    1_000_000 (characters per Mbp) for the paper's full lengths.
    """
    if scale <= 0:
        raise CorpusError("scale must be positive")
    spec = corpus_spec(name)
    key = (name, scale)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    real = _load_real_sequence(spec, scale)
    if real is not None:
        _CACHE[key] = real
        return real
    if spec.kind == "dna":
        alphabet = dna_alphabet()
        family_range = (50, 2000)
    else:
        alphabet = protein_alphabet()
        family_range = (20, 400)
    profile = SequenceProfile(
        length=spec.length_at(scale),
        order=spec.order,
        repeat_fraction=spec.repeat_fraction,
        family_length_range=family_range,
    )
    sequence = profile.realize(alphabet, seed=spec.seed)
    _CACHE[key] = sequence
    return sequence
