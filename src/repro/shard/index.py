"""Sharded SPINE: partition the text, index the pieces, merge answers.

The data string is cut into ``k`` contiguous *owned* segments. Shard
``i`` additionally indexes the ``overlap = max_pattern_len - 1``
characters that follow its owned span (they belong to shard ``i+1``),
so any occurrence of a pattern of length ``m <= max_pattern_len`` that
*starts* inside shard ``i``'s owned span lies entirely inside shard
``i``'s local text::

    start s  <  owned_end          (ownership)
    end   s + m  <=  owned_end + overlap   (since m - 1 <= overlap)

Queries therefore scatter to every shard, rebase local starts by the
shard's global offset, and drop matches whose local start falls in the
overlap region (``local_start >= owned_len``) — those are owned, and
re-found, by the next shard. Because shards are disjoint in ownership
and each shard's hit list is sorted, concatenation in shard order is
already globally sorted: the merged answers are byte-identical to the
unsharded index's.

The price is the documented **pattern-length cap**: a pattern longer
than ``max_pattern_len`` could straddle an ownership boundary beyond
the overlap and be silently missed, so every query entry point raises
:class:`~repro.exceptions.SearchError` for such patterns instead of
risking a wrong answer.

Snapshot semantics (``*_at`` methods) carry over shard-locally: the
global prefix of length ``L`` restricted to shard ``i`` is exactly the
local prefix of length ``clamp(L - start_i, 0, local_len)``, so the
Section 2.7 prefix property each shard already provides composes into
a lock-free consistent view of the whole — provided ``extend``
publishes in the right order (feed draining sealed shards, then the
tail, then advance the global length).
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.alphabet import Alphabet, alphabet_for, dna_alphabet
from repro.core import batch as _batch
from repro.core.batch import BatchMatch
from repro.exceptions import (CircuitOpenError, ConstructionError,
                              DeadlineExceededError, SearchError,
                              ServiceClosedError, StorageError)
from repro.obs import get_registry, get_tracer
from repro.resilience import CircuitBreaker, PartialResult
from repro.shard.parallel import ShardBuildSpec, build_shard_indexes

__all__ = ["ShardedSpineIndex"]

_MANIFEST = "manifest.json"
_MANIFEST_VERSION = 1


class _SpanJournal:
    """Durable copy of one disk shard's local text — the repair source.

    A string index can always be rebuilt from the text it indexes; the
    journal *keeps* that text (``shard-<i>.span`` next to the page
    file, or an in-memory buffer for pathless shards) so
    :meth:`ShardedSpineIndex.repair_shard` can reconstruct a shard
    whose page file went bad without trusting any of its pages.
    Appends mirror ``shard.index.extend`` calls exactly, journal
    first — on a crash the journal may run slightly ahead of the
    index, which :meth:`ShardedSpineIndex.load` reconciles.
    """

    __slots__ = ("path", "chars", "_fh", "_buf")

    def __init__(self, path=None, fresh=False):
        self.path = path
        self.chars = 0
        self._buf = None
        self._fh = None
        if path is None:
            self._buf = []
            return
        self._fh = open(path, "wb+" if fresh else "ab+")
        if not fresh:
            self._fh.seek(0)
            data = self._fh.read()
            if data:
                self.chars = len(data.decode("utf-8"))
        self._fh.seek(0, 2)

    def append(self, text):
        if not text:
            return
        if self._fh is not None:
            self._fh.write(text.encode("utf-8"))
            self._fh.flush()
        else:
            self._buf.append(text)
        self.chars += len(text)

    def read(self):
        """The full journalled text."""
        if self._fh is None:
            return "".join(self._buf)
        self._fh.flush()
        self._fh.seek(0)
        data = self._fh.read()
        self._fh.seek(0, 2)
        return data.decode("utf-8")

    def rewrite(self, text):
        """Replace the journal contents wholesale (reconciliation)."""
        if self._fh is None:
            self._buf = [text]
        else:
            self._fh.seek(0)
            self._fh.truncate(0)
            self._fh.write(text.encode("utf-8"))
            self._fh.flush()
        self.chars = len(text)

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class _Shard:
    """One partition: a traversal-layer index plus its placement.

    ``start``
        Global offset of the shard's first character.
    ``owned_len``
        Characters this shard *owns* (grows only on the tail shard).
    ``pending_overlap``
        Overlap characters a sealed shard has not received yet — a
        shard sealed by an extend-time split drains its overlap from
        subsequent ``extend`` calls.
    """

    __slots__ = ("index", "start", "owned_len", "pending_overlap")

    def __init__(self, index, start, owned_len, pending_overlap=0):
        self.index = index
        self.start = start
        self.owned_len = owned_len
        self.pending_overlap = pending_overlap


class ShardedSpineIndex:
    """A partitioned SPINE index with scatter-gather querying.

    Build with :meth:`build` (optionally multi-process), or reopen a
    saved one with :meth:`load`. Fronts all three traversal layers:

    - ``layer="memory"`` — one :class:`~repro.core.SpineIndex` per
      shard; supports ``extend`` with split-on-threshold.
    - ``layer="packed"`` — shards frozen into
      :class:`~repro.core.packed.PackedSpineIndex`; immutable.
    - ``layer="disk"`` — one :class:`~repro.disk.DiskSpineIndex` (its
      own page file) per shard.

    Query results are byte-identical to the unsharded index for every
    pattern up to ``max_pattern_len`` characters; longer patterns raise
    :class:`~repro.exceptions.SearchError` (see the module docstring).
    """

    def __init__(self, shards, alphabet, max_pattern_len, layer,
                 length, path=None, split_threshold=None,
                 disk_options=None):
        self._shards = list(shards)
        self.alphabet = alphabet
        self.max_pattern_len = max_pattern_len
        self.overlap = max_pattern_len - 1
        self.layer = layer
        self._len = length
        self.path = path
        self.split_threshold = split_threshold
        self._disk_options = disk_options or {}
        self._concurrent = False
        #: Shard ids under quarantine: scatter-gather skips them
        #: (degraded) or fails fast (strict) until repair completes.
        self._quarantined = set()
        #: Serializes repair publication against concurrent extends of
        #: a quarantined shard.
        self._repair_lock = threading.Lock()
        #: ``{shard_id: _SpanJournal}`` repair sources (disk layer).
        self._journals = {}
        #: Per-shard circuit breakers (``None`` until
        #: :meth:`enable_breakers`); aligned with ``self._shards``.
        self._breakers = None
        self._breaker_config = None
        #: Default degradation mode for queries that do not pass an
        #: explicit ``degraded=`` (strict — fail the fan-out — unless
        #: the serving layer opts in).
        self.degraded = False

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, text, shards=4, max_pattern_len=64, alphabet=None,
              workers=1, layer="memory", path=None,
              split_threshold=None, **disk_options):
        """Partition ``text`` into ``shards`` segments and build them.

        Parameters
        ----------
        shards:
            Number of partitions (owned spans are as equal as integer
            division allows).
        max_pattern_len:
            The longest pattern the sharded index will answer; fixes
            the inter-shard overlap at ``max_pattern_len - 1``.
        alphabet:
            Global alphabet shared by every shard. Defaults like
            :class:`~repro.core.SpineIndex`: inferred from ``text``
            (DNA for empty input). Inferring per shard would be wrong —
            a segment can lack symbols the full text has.
        workers:
            Worker *processes* for construction. ``1`` builds inline;
            more fan the shards out over a process pool (see
            :mod:`repro.shard.parallel`).
        layer:
            ``"memory"`` | ``"packed"`` | ``"disk"``.
        path:
            Directory for the sharded index. Required for the disk
            layer with ``workers > 1`` (each shard gets
            ``shard-<i>.pages`` inside it); also where scratch handoff
            files go for parallel memory builds when provided.
        split_threshold:
            When set, ``extend`` seals the tail shard once its owned
            span reaches this many characters and starts a fresh one.
            ``None`` (default) grows the tail unboundedly.
        """
        if shards < 1:
            raise ConstructionError("shards must be >= 1")
        if max_pattern_len < 1:
            raise ConstructionError("max_pattern_len must be >= 1")
        if layer not in ("memory", "packed", "disk"):
            raise ConstructionError(f"unknown layer {layer!r}")
        if alphabet is None:
            alphabet = alphabet_for(text) if text else dna_alphabet()
        overlap = max_pattern_len - 1
        n = len(text)
        base, rem = divmod(n, shards)
        starts, owned = [], []
        pos = 0
        for i in range(shards):
            size = base + (1 if i < rem else 0)
            starts.append(pos)
            owned.append(size)
            pos += size
        scratch_dir = None
        if path is not None:
            os.makedirs(path, exist_ok=True)
        elif workers > 1 and layer != "disk":
            import tempfile

            scratch_dir = tempfile.mkdtemp(prefix="repro-shard-")
        specs = []
        for i in range(shards):
            stop = min(starts[i] + owned[i] + overlap, n)
            segment = text[starts[i]:stop]
            if layer == "disk":
                out = (os.path.join(path, f"shard-{i}.pages")
                       if path is not None else None)
            else:
                base_dir = path if path is not None else scratch_dir
                out = (os.path.join(base_dir, f"shard-{i}.build.spne")
                       if base_dir is not None else None)
            specs.append(ShardBuildSpec(i, segment, alphabet, layer,
                                        out, disk_options))
        try:
            indexes = build_shard_indexes(specs, workers=workers)
        finally:
            if scratch_dir is not None:
                import shutil

                shutil.rmtree(scratch_dir, ignore_errors=True)
        if layer == "packed":
            from repro.core.packed import PackedSpineIndex

            indexes = [PackedSpineIndex.from_index(ix) for ix in indexes]
        # A non-tail shard whose overlap window ran past the end of the
        # build text is still owed the missing characters: record the
        # shortfall so later ``extend`` calls drain into it, exactly
        # like a shard sealed by an extend-time split. Without this, an
        # occurrence straddling the build-time tail boundary is owned by
        # an early shard that never indexed enough text to find it.
        built = []
        for i, ix in enumerate(indexes):
            stop = min(starts[i] + owned[i] + overlap, n)
            pending = (starts[i] + owned[i] + overlap - stop
                       if i < shards - 1 else 0)
            built.append(_Shard(ix, starts[i], owned[i], pending))
        index = cls(built, alphabet, max_pattern_len, layer, n,
                    path=path, split_threshold=split_threshold,
                    disk_options=disk_options)
        if layer == "disk":
            for i, spec in enumerate(specs):
                journal = _SpanJournal(index._journal_path(i),
                                       fresh=True)
                journal.append(spec.text)
                index._journals[i] = journal
        if path is not None and layer != "packed":
            index.save(path)
        return index

    def _journal_path(self, shard_id):
        """Span-journal path of one shard (``None`` keeps it in
        memory, mirroring a pathless disk shard)."""
        if self.path is None:
            return None
        return os.path.join(self.path, f"shard-{shard_id}.span")

    # -- basic protocol ------------------------------------------------

    def __len__(self):
        return self._len

    @property
    def shard_count(self):
        return len(self._shards)

    def enable_concurrent_reads(self):
        """Forward the latched-read switch to every shard (disk layer);
        remembered so shards created by later splits inherit it."""
        self._concurrent = True
        for shard in self._shards:
            enable = getattr(shard.index, "enable_concurrent_reads",
                             None)
            if enable is not None:
                enable()

    def enable_breakers(self, failure_threshold=5, reset_timeout=1.0,
                        success_threshold=1, clock=time.monotonic):
        """Put a :class:`~repro.resilience.CircuitBreaker` in front of
        every shard (idempotent; re-calling replaces the breakers and
        their state). Shards created by later tail splits inherit the
        same configuration.

        Strict queries fail fast with
        :class:`~repro.exceptions.CircuitOpenError` while a shard's
        breaker is open; degraded queries skip the shard and report it
        in ``failed_shards``. Either way an open breaker means the
        sick shard sees **no traffic** until its half-open probe.
        """
        self._breaker_config = {
            "failure_threshold": failure_threshold,
            "reset_timeout": reset_timeout,
            "success_threshold": success_threshold,
            "clock": clock,
        }
        self._breakers = [
            CircuitBreaker(f"shard-{i}", **self._breaker_config)
            for i in range(len(self._shards))
        ]
        return self._breakers

    def breaker(self, shard_id):
        """The breaker guarding ``shard_id`` (``None`` when disabled)."""
        if self._breakers is None:
            return None
        return self._breakers[shard_id]

    @property
    def breakers_enabled(self):
        """True after :meth:`enable_breakers` (the self-healing gate:
        the scrubber only quarantines when breakers are on, because
        quarantine piggybacks on the same skip-the-shard machinery)."""
        return self._breakers is not None

    @property
    def quarantined_shards(self):
        """Sorted ids of shards currently quarantined for repair."""
        return sorted(self._quarantined)

    def quarantine(self, shard_id, reason=""):
        """Take one shard out of the query fan-out.

        Strict queries fail fast with
        :class:`~repro.exceptions.CircuitOpenError`; degraded queries
        skip the shard and report it in ``failed_shards`` — exactly an
        open breaker's behaviour, but pinned until
        :meth:`repair_shard` succeeds.  Extends aimed at a quarantined
        shard land in its span journal only, so the rebuild picks them
        up.  Idempotent.
        """
        if not 0 <= shard_id < len(self._shards):
            raise SearchError(f"no shard {shard_id}")
        self._quarantined.add(shard_id)
        registry = get_registry()
        if registry.enabled:
            registry.counter("shard.quarantines").inc()
            registry.gauge("shard.quarantined").set(
                len(self._quarantined))
        tracer = get_tracer()
        if tracer.enabled:
            span = tracer.begin("shard.quarantine", shard=shard_id,
                                reason=reason)
            tracer.finish(span, status="quarantined")

    def repair_shard(self, shard_id):
        """Rebuild a quarantined disk shard online and re-admit it.

        The replacement index is constructed from the shard's **span
        journal** — the durable copy of its local text, which never
        trusts the corrupt page file — in a sidecar ``.rebuild`` page
        file, caught up with any extends that arrived mid-rebuild,
        atomically moved over the old file, and swapped in; only then
        is the quarantine lifted (and the shard's breaker reset).
        Queries keep running against the other shards the whole time —
        in degraded mode they return ``PartialResult(complete=False)``
        until the swap, complete answers after.

        Raises :class:`~repro.exceptions.StorageError` (shard stays
        quarantined) when no journal exists and the old index cannot
        yield its text — repair then needs the original source data.
        """
        if self.layer != "disk":
            raise StorageError(
                f"repair_shard only applies to disk shards "
                f"(layer={self.layer!r})")
        if not 0 <= shard_id < len(self._shards):
            raise SearchError(f"no shard {shard_id}")
        from repro.disk import DiskSpineIndex

        registry = get_registry()
        started = time.perf_counter()
        shard = self._shards[shard_id]
        journal = self._journals.get(shard_id)
        if journal is not None:
            source = journal.read()
        else:
            # Best effort without a journal: the old index's CL region
            # may still be readable when the corruption hit elsewhere.
            try:
                source = shard.index.text
            except Exception as exc:
                raise StorageError(
                    f"shard {shard_id}: no span journal and the old "
                    f"index cannot be read back ({exc}); repair needs "
                    "the original source text") from exc
        old_path = getattr(shard.index.pagefile, "_path", None)
        build_path = (old_path + ".rebuild"
                      if old_path is not None else None)
        new_index = DiskSpineIndex(alphabet=self.alphabet,
                                   path=build_path,
                                   **self._disk_options)
        try:
            new_index.extend(source)
            with self._repair_lock:
                if journal is not None and journal.chars > len(new_index):
                    # Extends that arrived while we were rebuilding.
                    new_index.extend(journal.read()[len(new_index):])
                if old_path is not None:
                    new_index.close(checkpoint=True)
                    shard.index.abort()
                    os.replace(build_path, old_path)
                    try:
                        os.replace(build_path + ".wal",
                                   old_path + ".wal")
                    except FileNotFoundError:
                        pass
                    new_index = DiskSpineIndex.open(
                        old_path, alphabet=self.alphabet,
                        **self._disk_options)
                else:
                    new_index.checkpoint()
                    shard.index.abort()
                if self._concurrent:
                    enable = getattr(new_index,
                                     "enable_concurrent_reads", None)
                    if enable is not None:
                        enable()
                shard.index = new_index
                if self._breakers is not None:
                    self._breakers[shard_id] = CircuitBreaker(
                        f"shard-{shard_id}", **self._breaker_config)
                self._quarantined.discard(shard_id)
        except Exception:
            # Leave the shard quarantined; drop the half-built file.
            try:
                new_index.abort()
            except Exception:
                pass
            if build_path is not None and os.path.exists(build_path):
                os.unlink(build_path)
            raise
        if registry.enabled:
            registry.counter("shard.repairs").inc()
            registry.gauge("shard.quarantined").set(
                len(self._quarantined))
            registry.timer("shard.repair.seconds").observe(
                time.perf_counter() - started)
        tracer = get_tracer()
        if tracer.enabled:
            span = tracer.begin("shard.repair", shard=shard_id,
                                chars=len(new_index))
            tracer.finish(span, status="repaired")

    def _guard(self, i, fn, degraded, failed):
        """Run one shard's query under its breaker.

        On success returns the shard's answer. On failure: strict mode
        re-raises; degraded mode records the error in ``failed[i]``
        and returns ``None``. Failure *classification* is the point —
        storage faults count against the breaker, while deadline
        expiry and service shutdown do not (a slow client budget says
        nothing about shard health), and an open breaker's instant
        rejection never touches the shard at all.
        """
        if i in self._quarantined:
            exc = CircuitOpenError(
                f"shard-{i} is quarantined for repair",
                name=f"shard-{i}")
            if degraded:
                failed[i] = exc
                return None
            raise exc
        breaker = self._breakers[i] if self._breakers is not None \
            else None
        try:
            if breaker is not None:
                breaker.allow()
            result = fn()
        except CircuitOpenError as exc:
            if degraded:
                failed[i] = exc
                return None
            raise
        except (DeadlineExceededError, ServiceClosedError) as exc:
            if degraded:
                failed[i] = exc
                return None
            raise
        except StorageError as exc:
            if breaker is not None:
                breaker.record_failure()
            if degraded:
                failed[i] = exc
                return None
            raise
        if breaker is not None:
            breaker.record_success()
        return result

    def _check_pattern(self, pattern):
        if len(pattern) > self.max_pattern_len:
            raise SearchError(
                f"pattern length {len(pattern)} exceeds this sharded "
                f"index's max_pattern_len={self.max_pattern_len}; "
                "occurrences could straddle a shard boundary beyond "
                "the overlap and be missed")

    def _local_limit(self, shard, limit):
        """Global snapshot bound ``limit`` restricted to one shard."""
        return max(0, min(limit - shard.start, len(shard.index)))

    # -- queries -------------------------------------------------------

    def contains(self, pattern):
        """True iff ``pattern`` occurs (cap-checked; clean ``False`` on
        foreign characters, ``True`` for the empty pattern)."""
        return self.contains_at(pattern, self._len)

    def contains_at(self, pattern, limit, cancel=None):
        """``contains`` evaluated against the length-``limit`` prefix.

        Always strict: a boolean cannot express "some shards did not
        answer", so shard failures (and open breakers) raise rather
        than risk a wrong ``False``.
        """
        if pattern == "":
            return True
        self._check_pattern(pattern)
        if self.alphabet.try_encode(pattern) is None:
            return False
        m = len(pattern)
        for i, shard in enumerate(self._shards):
            bound = self._local_limit(shard, limit)
            if bound < m:
                continue
            hit = self._guard(
                i,
                lambda: _batch.contains_at(shard.index, pattern, bound,
                                           cancel),
                degraded=False, failed={})
            if hit:
                return True
        return False

    def find_all(self, pattern):
        """Sorted global starts of all occurrences — byte-identical to
        the unsharded index's answer for patterns within the cap."""
        return self.find_all_at(pattern, self._len)

    def find_all_at(self, pattern, limit, cancel=None, degraded=None):
        """``find_all`` evaluated against the length-``limit`` prefix.

        ``degraded`` overrides the index-level :attr:`degraded`
        default. In degraded mode the answer is a
        :class:`~repro.resilience.PartialResult` (a ``list``): shards
        that fail — storage fault, open breaker, or a deadline slice
        exhausted mid-fan-out — are skipped and reported in
        ``failed_shards`` instead of failing the query; every
        occurrence returned is real (surviving shards answer exactly),
        but occurrences owned by a failed shard may be missing. In
        strict mode (the default) any shard failure propagates.
        """
        if pattern == "":
            raise SearchError(
                "find_all of the empty pattern is ill-defined")
        self._check_pattern(pattern)
        if degraded is None:
            degraded = self.degraded
        registry = get_registry()
        metrics = registry if registry.enabled else None
        tracer = get_tracer()
        span = (tracer.begin("shard.find_all", pattern=pattern,
                             shards=len(self._shards))
                if tracer.enabled else None)
        if metrics is not None:
            started = time.perf_counter()
        try:
            starts, routed, dropped, failed = self._scatter_find(
                pattern, limit, span, cancel=cancel, degraded=degraded)
        except BaseException as exc:
            if span is not None:
                tracer.finish(span, status="error",
                              error=type(exc).__name__)
            raise
        if metrics is not None:
            metrics.counter("shard.queries").inc()
            metrics.counter("shard.route.fanout").inc(routed)
            metrics.counter("shard.merge.dropped").inc(dropped)
            if failed:
                metrics.counter("resilience.degraded.queries").inc()
                metrics.counter("resilience.degraded.failed_shards") \
                    .inc(len(failed))
            metrics.observe_latency("shard.query",
                                    time.perf_counter() - started)
        if span is not None:
            tracer.finish(span, status="hit" if starts else "miss",
                          occurrences=len(starts),
                          failed_shards=sorted(failed))
        if degraded:
            return PartialResult(starts, complete=not failed,
                                 failed_shards=sorted(failed),
                                 errors=failed)
        return starts

    def _scatter_find(self, pattern, limit, span=None, cancel=None,
                      degraded=False):
        """The scatter-gather core: per-shard hits, rebase, dedup.

        Returns ``(merged, routed, dropped, failed)`` with ``failed``
        a ``{shard_id: error}`` dict (always empty in strict mode —
        failures raise there instead).
        """
        if self.alphabet.try_encode(pattern) is None:
            return [], 0, 0, {}
        m = len(pattern)
        merged = []
        routed = dropped = 0
        failed = {}
        for i, shard in enumerate(self._shards):
            bound = self._local_limit(shard, limit)
            if bound < m:
                continue
            routed += 1
            if span is not None:
                span.event("shard-route", shard=i, start=shard.start,
                           local_limit=bound)
            local = self._guard(
                i,
                lambda: _batch.find_all_at(shard.index, pattern, bound,
                                           cancel),
                degraded, failed)
            if i in failed:
                if span is not None:
                    span.event("shard-degraded", shard=i,
                               error=type(failed[i]).__name__)
                continue
            kept = [s + shard.start for s in local
                    if s < shard.owned_len]
            dropped += len(local) - len(kept)
            merged.extend(kept)
        if span is not None:
            span.event("shard-merge", kept=len(merged),
                       dropped=dropped, routed=routed,
                       failed=len(failed))
        return merged, routed, dropped, failed

    def count(self, pattern):
        """Number of occurrences (``find_all`` semantics exactly)."""
        return len(self.find_all(pattern))

    def find_first(self, pattern):
        """Global start of the first occurrence, or ``None``.

        Shards are scanned in order; the first shard whose earliest
        local hit lands in its owned span yields the answer (a hit in
        the overlap region belongs to — and recurs in — a later shard).
        """
        if pattern == "":
            return 0
        self._check_pattern(pattern)
        if self.alphabet.try_encode(pattern) is None:
            return None
        m = len(pattern)
        for shard in self._shards:
            bound = self._local_limit(shard, self._len)
            if bound < m:
                continue
            local = shard.index.find_first(pattern)
            if local is not None and local < shard.owned_len:
                return local + shard.start
        return None

    def batch_find_all(self, patterns, threads=1, limit=None,
                       executor=None, cancel=None, degraded=None):
        """Batched multi-pattern query with per-shard fan-out.

        Each shard resolves the whole pattern set with one shared
        backbone scan (:func:`repro.core.batch.batch_find_all`); shards
        run concurrently on ``executor`` when given (authoritative,
        ``threads`` ignored — same precedence as the flat batch path),
        else on a temporary pool of ``threads`` workers, else serially.
        Merging rebases and deduplicates exactly like :meth:`find_all`.

        In degraded mode (``degraded=`` overriding the index default)
        failed shards are skipped: every ``BatchMatch.starts`` is then
        a :class:`~repro.resilience.PartialResult` carrying the batch's
        ``failed_shards``, and a pattern whose only occurrences lived
        on a failed shard reports ``miss`` with ``complete=False``.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        _batch.check_executor_open(executor)
        if cancel is not None:
            cancel.poll()
        if degraded is None:
            degraded = self.degraded
        patterns = list(patterns)
        for pattern in patterns:
            if pattern == "":
                raise SearchError(
                    "find_all of the empty pattern is ill-defined")
            self._check_pattern(pattern)
        bound_limit = self._len if limit is None else min(limit,
                                                          self._len)
        registry = get_registry()
        metrics = registry if registry.enabled else None
        tracer = get_tracer()
        span = (tracer.begin("shard.batch_find_all",
                             patterns=len(patterns),
                             shards=len(self._shards))
                if tracer.enabled else None)
        if metrics is not None:
            started = time.perf_counter()

        shards = list(self._shards)
        bounds = [self._local_limit(s, bound_limit) for s in shards]
        live = [i for i, b in enumerate(bounds) if b > 0]
        if span is not None:
            for i in live:
                span.event("shard-route", shard=i,
                           start=shards[i].start, local_limit=bounds[i])

        failed = {}

        def _one(i):
            return self._guard(
                i,
                lambda: _batch.batch_find_all(
                    shards[i].index, patterns, threads=1,
                    limit=bounds[i],
                    cancel=cancel.child() if cancel is not None
                    else None),
                degraded, failed)

        try:
            if len(live) > 1 and executor is not None:
                per_shard = dict(zip(live, executor.map(_one, live)))
            elif len(live) > 1 and threads > 1:
                with ThreadPoolExecutor(max_workers=threads) as pool:
                    per_shard = dict(zip(live, pool.map(_one, live)))
            else:
                per_shard = {i: _one(i) for i in live}
        except BaseException as exc:
            if span is not None:
                tracer.finish(span, status="error",
                              error=type(exc).__name__)
            raise

        failed_ids = sorted(failed)
        complete = not failed

        def _starts(merged):
            if degraded:
                return PartialResult(merged, complete=complete,
                                     failed_shards=failed_ids,
                                     errors=failed)
            return merged

        results = []
        dropped = 0
        for j, pattern in enumerate(patterns):
            if self.alphabet.try_encode(pattern) is None:
                results.append(BatchMatch(pattern, _starts([]),
                                          "alphabet-miss"))
                continue
            merged = []
            for i in live:
                if i in failed:
                    continue
                shard = shards[i]
                local = per_shard[i][j].starts
                kept = [s + shard.start for s in local
                        if s < shard.owned_len]
                dropped += len(local) - len(kept)
                merged.extend(kept)
            results.append(BatchMatch(pattern, _starts(merged),
                                      "hit" if merged else "miss"))
        if span is not None:
            span.event("shard-merge", routed=len(live),
                       dropped=dropped, failed=len(failed))
        if metrics is not None:
            metrics.counter("shard.batches").inc()
            metrics.counter("shard.route.fanout").inc(len(live))
            metrics.counter("shard.merge.dropped").inc(dropped)
            if failed:
                metrics.counter("resilience.degraded.queries").inc()
                metrics.counter("resilience.degraded.failed_shards") \
                    .inc(len(failed))
            metrics.observe_latency("shard.query",
                                    time.perf_counter() - started)
        if span is not None:
            tracer.finish(span, status="done",
                          failed_shards=failed_ids)
        return results

    # -- growth --------------------------------------------------------

    def extend(self, text):
        """Append ``text``; the tail shard owns every new character.

        Publication order keeps lock-free snapshot readers consistent:
        sealed shards still draining their overlap are fed first, then
        the tail, and only then does the global length advance — a
        reader holding a limit taken before the call never follows an
        edge into half-appended data, exactly as on a flat in-memory
        index. When ``split_threshold`` is set and the tail's owned
        span reaches it, the tail is sealed (its overlap drains from
        future extends) and a fresh empty tail shard is started.
        """
        if self.layer == "packed":
            raise ConstructionError(
                "packed shards are immutable; extend the memory layer "
                "and re-freeze")
        if not text:
            return
        if self.alphabet.try_encode(text) is None:
            # Match SpineIndex.extend: foreign characters are a hard
            # error (AlphabetError) before any shard mutates.
            self.alphabet.encode(text)
        n0 = self._len
        grown = len(text)
        for i, shard in enumerate(self._shards[:-1]):
            if shard.pending_overlap <= 0:
                continue
            want_from = shard.start + self._local_len(i, shard)
            want_to = (shard.start + shard.owned_len + self.overlap)
            lo, hi = max(want_from, n0), min(want_to, n0 + grown)
            if lo < hi:
                self._feed(i, shard, text[lo - n0:hi - n0])
            shard.pending_overlap = want_to - (
                shard.start + self._local_len(i, shard))
        tail_id = len(self._shards) - 1
        tail = self._shards[tail_id]
        self._feed(tail_id, tail, text)
        tail.owned_len += grown
        self._len = n0 + grown
        registry = get_registry()
        if registry.enabled:
            registry.counter("shard.extend.chars").inc(grown)
        if (self.split_threshold is not None
                and tail.owned_len >= self.split_threshold):
            self._split_tail()

    def _local_len(self, i, shard):
        """Logical local length of shard ``i``: its index length, or —
        while quarantined with a journal — the journal length (the
        index stops receiving text then; the journal keeps growing so
        the rebuild catches up)."""
        journal = self._journals.get(i)
        if journal is not None and i in self._quarantined:
            return journal.chars
        return len(shard.index)

    def _feed(self, i, shard, piece):
        """Append ``piece`` to one shard: journal first (it is the
        repair source and must never lag), then the index — unless the
        shard is quarantined, in which case the text lands in the
        journal only and reaches the index via the rebuild."""
        if not piece:
            return
        journal = self._journals.get(i)
        if journal is not None and i in self._quarantined:
            with self._repair_lock:
                if i in self._quarantined:
                    journal.append(piece)
                    return
            # Repair finished while we waited: fall through and feed
            # the (rebuilt) index normally.
        if journal is not None:
            journal.append(piece)
        shard.index.extend(piece)

    def _split_tail(self):
        """Seal the tail and start a fresh empty one after it."""
        tail = self._shards[-1]
        tail.pending_overlap = self.overlap
        new_id = len(self._shards)
        new_start = tail.start + tail.owned_len
        if self.layer == "disk":
            from repro.disk import DiskSpineIndex

            new_path = (os.path.join(self.path,
                                     f"shard-{new_id}.pages")
                        if self.path is not None else None)
            index = DiskSpineIndex(alphabet=self.alphabet,
                                   path=new_path, **self._disk_options)
        else:
            from repro.core.index import SpineIndex

            index = SpineIndex(alphabet=self.alphabet)
        shard = _Shard(index, new_start, 0)
        if self.layer == "disk":
            self._journals[new_id] = _SpanJournal(
                self._journal_path(new_id), fresh=True)
        if self._concurrent:
            enable = getattr(index, "enable_concurrent_reads", None)
            if enable is not None:
                enable()
        if self._breakers is not None:
            self._breakers.append(
                CircuitBreaker(f"shard-{new_id}",
                               **self._breaker_config))
        # Fully initialized before it becomes visible to readers.
        self._shards.append(shard)
        registry = get_registry()
        if registry.enabled:
            registry.counter("shard.splits").inc()

    # -- persistence ---------------------------------------------------

    def stats(self):
        """A plain-dict description (CLI ``repro shard stats``)."""
        return {
            "layer": self.layer,
            "length": self._len,
            "max_pattern_len": self.max_pattern_len,
            "overlap": self.overlap,
            "split_threshold": self.split_threshold,
            "breakers": ([b.snapshot() for b in self._breakers]
                         if self._breakers is not None else None),
            "quarantined": self.quarantined_shards,
            "shards": [
                {
                    "id": i,
                    "start": s.start,
                    "owned_len": s.owned_len,
                    "local_len": len(s.index),
                    "pending_overlap": s.pending_overlap,
                    "quarantined": i in self._quarantined,
                }
                for i, s in enumerate(self._shards)
            ],
        }

    def save(self, path=None):
        """Persist to a directory: per-shard files plus a manifest.

        Memory shards serialize to ``shard-<i>.spne``; disk shards
        checkpoint their own page files (which must already live in
        the directory). Packed shards cannot be serialized — save the
        memory layer and :meth:`load` it as packed.
        """
        path = path if path is not None else self.path
        if path is None:
            raise StorageError("no directory to save the sharded "
                               "index to")
        if self.layer == "packed":
            raise StorageError(
                "packed shards cannot be serialized; save the memory "
                "layer and load it with layer='packed'")
        os.makedirs(path, exist_ok=True)
        entries = []
        for i, shard in enumerate(self._shards):
            if self.layer == "disk":
                shard.index.checkpoint()
                pagefile = getattr(shard.index.pagefile, "_path", None)
                if pagefile is None:
                    raise StorageError(
                        "in-memory disk shards cannot be saved; build "
                        "with a path")
                fname = os.path.basename(pagefile)
            else:
                from repro.core.serialize import save_index

                fname = f"shard-{i}.spne"
                save_index(shard.index, os.path.join(path, fname))
            entries.append({
                "id": i,
                "file": fname,
                "start": shard.start,
                "owned_len": shard.owned_len,
                "pending_overlap": shard.pending_overlap,
            })
        manifest = {
            "format": _MANIFEST_VERSION,
            "layer": self.layer,
            "length": self._len,
            "max_pattern_len": self.max_pattern_len,
            "split_threshold": self.split_threshold,
            "alphabet": {
                "symbols": self.alphabet.symbols,
                "name": self.alphabet.name,
                "case_insensitive": self.alphabet.case_insensitive,
                "separator_code": self.alphabet.separator_code,
            },
            "shards": entries,
        }
        tmp = os.path.join(path, _MANIFEST + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
        os.replace(tmp, os.path.join(path, _MANIFEST))
        self.path = path

    @classmethod
    def load(cls, path, layer=None, **disk_options):
        """Reopen a directory written by :meth:`save`.

        ``layer`` may upgrade a saved memory layout to ``"packed"``
        (shards are frozen after loading); a disk layout always
        reopens as disk.
        """
        manifest_path = os.path.join(path, _MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise StorageError(f"{path}: not a sharded index "
                               "(no manifest)")
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"{path}: corrupt shard manifest: {exc}") from exc
        if manifest.get("format") != _MANIFEST_VERSION:
            raise StorageError(
                f"unsupported shard manifest format "
                f"{manifest.get('format')!r}")
        saved_layer = manifest["layer"]
        want = layer if layer is not None else saved_layer
        if saved_layer == "disk" and want != "disk":
            raise StorageError("a disk shard layout reopens as disk")
        if saved_layer == "memory" and want == "disk":
            raise StorageError("a memory shard layout cannot reopen "
                               "as disk; rebuild with layer='disk'")
        spec = manifest["alphabet"]
        alphabet = Alphabet(spec["symbols"], name=spec["name"],
                            case_insensitive=spec["case_insensitive"])
        if spec.get("separator_code") is not None:
            alphabet.separator_code = spec["separator_code"]
        shards = []
        for entry in manifest["shards"]:
            fpath = os.path.join(path, entry["file"])
            if saved_layer == "disk":
                from repro.disk import DiskSpineIndex

                index = DiskSpineIndex.open(fpath, alphabet=alphabet,
                                            **disk_options)
            else:
                from repro.core.serialize import load_index

                index = load_index(fpath)
                if want == "packed":
                    from repro.core.packed import PackedSpineIndex

                    index = PackedSpineIndex.from_index(index)
            shards.append(_Shard(index, entry["start"],
                                 entry["owned_len"],
                                 entry.get("pending_overlap", 0)))
        index = cls(shards, alphabet, manifest["max_pattern_len"],
                    want, manifest["length"], path=path,
                    split_threshold=manifest.get("split_threshold"),
                    disk_options=disk_options)
        if want == "disk":
            # WAL replay can reopen a shard *ahead* of the saved
            # manifest (extends since the last save() are durable
            # now); fold the replayed text back into the shard map so
            # lengths and overlap accounting stay consistent.
            tail = index._shards[-1]
            extra = len(tail.index) - tail.owned_len
            if extra > 0:
                tail.owned_len += extra
                index._len += extra
            for shard in index._shards[:-1]:
                if shard.pending_overlap > 0:
                    shard.pending_overlap = max(
                        0, shard.owned_len + index.overlap
                        - len(shard.index))
            for i, shard in enumerate(index._shards):
                jpath = index._journal_path(i)
                if jpath is None or not os.path.exists(jpath):
                    # Directories saved before span journals existed:
                    # repair falls back to the shard's own text.
                    continue
                journal = _SpanJournal(jpath)
                if journal.chars != len(shard.index):
                    # The journal is appended before the index, so a
                    # crash can leave it ahead (or a WAL-disabled
                    # reopen behind); the reopened index is the
                    # durable truth — resync the journal to it.
                    journal.rewrite(shard.index.text)
                index._journals[i] = journal
        return index

    def close(self):
        """Close disk shards and span journals (no-op on the
        in-memory layers)."""
        for shard in self._shards:
            closer = getattr(shard.index, "close", None)
            if closer is not None:
                closer()
        for journal in self._journals.values():
            journal.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
