"""Sharded SPINE indexing: partitioned construction and querying.

See :mod:`repro.shard.index` for the partitioning/overlap invariants
and :mod:`repro.shard.parallel` for the multi-process build.
"""

from repro.shard.index import ShardedSpineIndex
from repro.shard.parallel import ShardBuildSpec, build_shard_indexes

__all__ = ["ShardedSpineIndex", "ShardBuildSpec",
           "build_shard_indexes"]
