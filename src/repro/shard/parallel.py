"""Multi-process shard construction.

SPINE construction is a strictly sequential left-to-right APPEND loop
(paper Figure 4), so a single index cannot be built on more than one
core. Shards can: each worker process builds one shard's segment
independently, then hands the finished structure back to the parent.

Two handoff channels, chosen by layer:

memory / packed
    The worker builds an in-memory :class:`~repro.core.SpineIndex` and
    serializes it with :func:`repro.core.serialize.save_index` to a
    scratch file; the parent deserializes (and, for the packed layer,
    freezes with :meth:`~repro.core.packed.PackedSpineIndex.from_index`).
    The SPNE serializer bulk-packs its sparse sections precisely so this
    handoff does not eat the multicore speedup.

disk
    The worker builds a :class:`~repro.disk.DiskSpineIndex` directly at
    the shard's final page-file path, checkpoints, and closes; the
    parent simply reopens the file. There is no second copy — the page
    file *is* the shard. A disk build without a real path cannot cross
    the process boundary (the pages would die with the worker), so
    ``workers > 1`` requires one.

Everything a worker needs travels in a picklable :class:`ShardBuildSpec`
(the segment text, the **global** alphabet — a shard's segment may lack
symbols the full text has — and the layer/paths). The worker function is
a module top-level so it pickles under every multiprocessing start
method.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from repro.exceptions import ConstructionError
from repro.obs import get_registry

__all__ = ["ShardBuildSpec", "build_shard_indexes"]


class ShardBuildSpec:
    """Everything one worker needs to build one shard (picklable)."""

    __slots__ = ("shard_id", "text", "alphabet", "layer", "out_path",
                 "disk_options")

    def __init__(self, shard_id, text, alphabet, layer, out_path,
                 disk_options=None):
        self.shard_id = shard_id
        self.text = text
        self.alphabet = alphabet
        #: ``"memory"`` | ``"packed"`` | ``"disk"``. Packed shards are
        #: built as memory shards and frozen in the parent.
        self.layer = layer
        #: Scratch ``.spne`` path (memory/packed) or the shard's final
        #: page-file path (disk).
        self.out_path = out_path
        self.disk_options = disk_options or {}


def _build_one(spec):
    """Build one shard in the current process; returns ``spec.out_path``.

    Top-level so :mod:`multiprocessing` can pickle it under the spawn
    start method as well as fork.
    """
    if spec.layer == "disk":
        from repro.disk import DiskSpineIndex

        index = DiskSpineIndex(alphabet=spec.alphabet,
                               path=spec.out_path, **spec.disk_options)
        try:
            index.extend(spec.text)
            index.checkpoint()
        finally:
            index.close()
    else:
        from repro.core.index import SpineIndex
        from repro.core.serialize import save_index

        index = SpineIndex(spec.text, alphabet=spec.alphabet)
        save_index(index, spec.out_path)
    return spec.out_path


def _build_inline(spec):
    """Single-process path: build the shard object directly, skipping
    the serialize/deserialize round trip entirely."""
    if spec.layer == "disk":
        from repro.disk import DiskSpineIndex

        index = DiskSpineIndex(alphabet=spec.alphabet,
                               path=spec.out_path, **spec.disk_options)
        index.extend(spec.text)
        if spec.out_path is not None:
            index.checkpoint()
        return index
    from repro.core.index import SpineIndex

    return SpineIndex(spec.text, alphabet=spec.alphabet)


def _load_built(spec):
    """Parent-side handoff: materialize the shard a worker produced."""
    if spec.layer == "disk":
        from repro.disk import DiskSpineIndex

        return DiskSpineIndex.open(spec.out_path,
                                   alphabet=spec.alphabet,
                                   **spec.disk_options)
    from repro.core.serialize import load_index

    index = load_index(spec.out_path)
    os.remove(spec.out_path)
    return index


def build_shard_indexes(specs, workers=1):
    """Build every spec's shard, ``workers`` at a time.

    Returns the shard indexes aligned with ``specs`` order (memory
    indexes for the memory/packed layers, open ``DiskSpineIndex``
    objects for the disk layer). ``workers == 1`` builds inline in this
    process with no serialization; ``workers > 1`` fans the specs out
    over a :class:`~concurrent.futures.ProcessPoolExecutor`.
    """
    if workers < 1:
        raise ConstructionError("workers must be >= 1")
    specs = list(specs)
    if workers > 1:
        for spec in specs:
            if spec.out_path is None:
                raise ConstructionError(
                    "parallel shard builds need real paths: an "
                    "in-memory disk shard built in a worker process "
                    "would die with the worker")
    registry = get_registry()
    metrics = registry if registry.enabled else None
    if metrics is not None:
        started = time.perf_counter()
    if workers == 1 or len(specs) <= 1:
        indexes = [_build_inline(spec) for spec in specs]
    else:
        # The parent's deserialization is the serial fraction of this
        # fan-out, so it is pipelined: each shard is loaded as soon as
        # its worker finishes, overlapping with workers still building
        # later shards. With more shards than workers (the default
        # build shape) most of the load cost hides behind the builds.
        indexes = [None] * len(specs)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(_build_one, spec): i
                       for i, spec in enumerate(specs)}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    i = pending.pop(future)
                    future.result()  # surface worker exceptions
                    indexes[i] = _load_built(specs[i])
    if metrics is not None:
        metrics.counter("shard.build.shards").inc(len(specs))
        metrics.counter("shard.build.workers").inc(workers)
        metrics.timer("shard.build.seconds").observe(
            time.perf_counter() - started)
    return indexes
