"""A persistent document store over a generalized SPINE index.

Semantics chosen to respect what the index can and cannot do:

* **adds are cheap** — SPINE is online, so a new document is appended
  to the live index in linear time;
* **deletes are tombstones** — suffix structures cannot un-index, so a
  deleted document is masked out of every result and physically removed
  only by :meth:`compact` (a rebuild), the standard LSM-ish trade;
* **persistence is explicit** — :meth:`save` writes one index file plus
  a tombstone sidecar; :meth:`DocumentStore.open` restores everything.

The store is the worked answer to the paper's closing remark that
SPINE's linear, online structure suits database-engine integration.
"""

from __future__ import annotations

import json
import os

from repro.alphabet import dna_alphabet
from repro.core.generalized import GeneralizedSpineIndex
from repro.core.serialize import load_generalized, save_generalized
from repro.exceptions import SearchError, StorageError

_SIDECAR_SUFFIX = ".meta.json"


class DocumentStore:
    """Named documents, one substring index, per-document answers.

    Parameters
    ----------
    alphabet:
        Alphabet of the stored documents (default DNA).

    Examples
    --------
    >>> store = DocumentStore()
    >>> store.add("plasmid", "ACGTACGT")
    >>> store.add("phage", "TTACGGAC")
    >>> sorted(store.search("ACG"))
    [('phage', 2), ('plasmid', 0), ('plasmid', 4)]
    >>> store.delete("plasmid")
    >>> sorted(store.search("ACG"))
    [('phage', 2)]
    """

    def __init__(self, alphabet=None):
        self._gindex = GeneralizedSpineIndex(
            alphabet if alphabet is not None else dna_alphabet())
        self._sid_of = {}        # name -> member id
        self._deleted = set()    # member ids masked out

    # ------------------------------------------------------------------
    # CRUD
    # ------------------------------------------------------------------

    def add(self, name, text):
        """Add a document (names are unique among live documents)."""
        if name in self._sid_of and \
                self._sid_of[name] not in self._deleted:
            raise StorageError(f"document {name!r} already exists")
        sid = self._gindex.add_string(text, name=name)
        self._sid_of[name] = sid
        return None

    def delete(self, name):
        """Tombstone a document (space reclaimed by :meth:`compact`)."""
        sid = self._require(name)
        self._deleted.add(sid)

    def get(self, name):
        """The document's text (decoded from the vertebra labels)."""
        sid = self._require(name)
        start = self._gindex._starts[sid]
        length = self._gindex._lengths[sid]
        codes = self._gindex.index._codes[start + 1:start + length + 1]
        return self._gindex.alphabet.decode(codes)

    def _require(self, name):
        sid = self._sid_of.get(name)
        if sid is None or sid in self._deleted:
            raise SearchError(f"no document named {name!r}")
        return sid

    def names(self):
        """Live document names, in insertion order."""
        return [name for name, sid in sorted(self._sid_of.items(),
                                             key=lambda kv: kv[1])
                if sid not in self._deleted]

    def __len__(self):
        return len(self._sid_of) - len(
            set(self._sid_of.values()) & self._deleted)

    @property
    def dead_fraction(self):
        """Fraction of indexed characters belonging to tombstoned
        documents (a compaction trigger signal)."""
        total = sum(self._gindex._lengths) or 1
        dead = sum(self._gindex._lengths[sid] for sid in self._deleted)
        return dead / total

    # ------------------------------------------------------------------
    # queries (tombstone-masked)
    # ------------------------------------------------------------------

    def search(self, pattern):
        """All occurrences as ``(name, offset)`` pairs."""
        out = []
        for sid, offset in self._gindex.find_all(pattern):
            if sid not in self._deleted:
                out.append((self._gindex.string_name(sid), offset))
        return out

    def contains(self, pattern):
        """True iff the pattern occurs in any live document."""
        return bool(self.search(pattern))

    def match(self, query, min_length=12):
        """Per-document matched-character totals for a streamed query.

        Returns ``{name: matched_characters}`` over right-maximal
        matches of at least ``min_length`` — a similarity ranking
        signal (which documents does this query resemble?).
        """
        totals = {}
        for sid, _, _, length in self._gindex.maximal_matches(
                query, min_length=min_length):
            if sid in self._deleted:
                continue
            name = self._gindex.string_name(sid)
            totals[name] = totals.get(name, 0) + length
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def compact(self):
        """Rebuild the index without tombstoned documents.

        Linear in the live data (SPINE construction is linear); resets
        ``dead_fraction`` to zero. Returns the number of characters
        reclaimed.
        """
        reclaimed = sum(self._gindex._lengths[sid]
                        for sid in self._deleted)
        live = [(name, self.get(name)) for name in self.names()]
        base = self._gindex.alphabet
        fresh = DocumentStore.__new__(DocumentStore)
        fresh._gindex = GeneralizedSpineIndex(base)
        fresh._sid_of = {}
        fresh._deleted = set()
        for name, text in live:
            fresh.add(name, text)
        self._gindex = fresh._gindex
        self._sid_of = fresh._sid_of
        self._deleted = set()
        return reclaimed

    def save(self, path):
        """Persist the store: index file + JSON sidecar."""
        save_generalized(self._gindex, path)
        sidecar = {
            "deleted": sorted(self._deleted),
            "names": self._sid_of,
        }
        with open(str(path) + _SIDECAR_SUFFIX, "w",
                  encoding="utf-8") as handle:
            json.dump(sidecar, handle)

    @classmethod
    def open(cls, path):
        """Restore a store written by :meth:`save`."""
        sidecar_path = str(path) + _SIDECAR_SUFFIX
        if not os.path.exists(sidecar_path):
            raise StorageError(f"{sidecar_path}: missing store sidecar")
        store = cls.__new__(cls)
        store._gindex = load_generalized(path)
        with open(sidecar_path, "r", encoding="utf-8") as handle:
            sidecar = json.load(handle)
        store._deleted = set(sidecar["deleted"])
        store._sid_of = {name: int(sid)
                         for name, sid in sidecar["names"].items()}
        return store
