"""Document store: the paper's database-integration story, realized.

The paper closes on SPINE's fitness "for integration with database
engines" (linear structure, online growth, generalized indexing).
:class:`repro.store.document.DocumentStore` is that integration in
miniature: a persistent, crash-consistent collection of named documents
over one generalized SPINE index, with substring/match/approximate
queries attributed per document, tombstone deletion (the index is
append-only, as SPINE inherently is) and explicit compaction.
"""

from repro.store.document import DocumentStore

__all__ = ["DocumentStore"]
