"""Sequence-alignment application layer.

The paper motivates SPINE with genome alignment: MUMmer-style anchoring
needs all maximal matching substrings between two genomes (Section 4's
"complex matching operation"). This package packages that operation —
and the classic maximal *unique* match (MUM) refinement used for global
alignment — on top of any of the library's indexes.
"""

from repro.align.approximate import (
    approximate_find_all,
    approximate_occurrences,
    hamming_find_all,
    hamming_scan,
    sellers_scan,
)
from repro.align.dotplot import (
    SyntenyBlock,
    dotplot_segments,
    render_dotplot,
    synteny_blocks,
)
from repro.align.mum import (
    AnchorChain,
    align_anchors,
    chain_anchors,
    find_maximal_matches,
    find_mums,
)

__all__ = [
    "AnchorChain",
    "align_anchors",
    "approximate_find_all",
    "approximate_occurrences",
    "chain_anchors",
    "find_maximal_matches",
    "find_mums",
    "hamming_find_all",
    "hamming_scan",
    "sellers_scan",
    "SyntenyBlock",
    "dotplot_segments",
    "render_dotplot",
    "synteny_blocks",
]
