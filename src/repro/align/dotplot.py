"""Dot plots and synteny blocks from maximal matches.

The visual companion to whole-genome comparison: every maximal match
between two sequences is a diagonal segment in the (data, query) plane;
clustering near-collinear segments yields *synteny blocks* — the
conserved, possibly relocated regions a rearrangement analysis reports.
Everything here is built on the Section 4 matching machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.mum import find_maximal_matches
from repro.exceptions import SearchError


@dataclass(frozen=True)
class SyntenyBlock:
    """A cluster of near-collinear match segments."""

    data_start: int
    data_end: int
    query_start: int
    query_end: int
    matched: int       # total matched characters inside the block
    segments: int      # number of contributing match segments

    @property
    def diagonal(self):
        """Offset ``data_start - query_start`` of the block."""
        return self.data_start - self.query_start


def dotplot_segments(data, query, min_length=20, index=None):
    """Diagonal segments for a match dot plot.

    Returns ``(data_start, query_start, length)`` triples — identical
    to :func:`find_maximal_matches`, re-exported under the plotting
    name for clarity of intent.
    """
    return find_maximal_matches(data, query, min_length=min_length,
                                index=index)


def render_dotplot(segments, data_length, query_length, width=64,
                   height=24):
    """ASCII dot plot (data on x, query on y) for terminal inspection."""
    if data_length <= 0 or query_length <= 0:
        raise SearchError("sequence lengths must be positive")
    grid = [[" "] * width for _ in range(height)]
    for data_start, query_start, length in segments:
        steps = max(1, min(length, width))
        for k in range(steps):
            frac = k / steps
            x = int((data_start + frac * length) * (width - 1)
                    / data_length)
            y = int((query_start + frac * length) * (height - 1)
                    / query_length)
            if 0 <= x < width and 0 <= y < height:
                grid[y][x] = "*"
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}"


def synteny_blocks(segments, max_diagonal_drift=32, max_gap=2000):
    """Cluster match segments into synteny blocks.

    Two segments join the same block when their diagonals differ by at
    most ``max_diagonal_drift`` (allowing small indels) and they are
    within ``max_gap`` of each other along the query. Greedy
    single-pass clustering over query-sorted segments — adequate for
    anchor-scale inputs.
    """
    if max_diagonal_drift < 0 or max_gap < 0:
        raise SearchError("drift and gap bounds must be non-negative")
    ordered = sorted(segments, key=lambda t: (t[1], t[0]))
    open_blocks = []  # mutable dicts while clustering
    done = []
    for data_start, query_start, length in ordered:
        diagonal = data_start - query_start
        home = None
        for block in open_blocks:
            if abs(block["diag"] - diagonal) <= max_diagonal_drift \
                    and query_start - block["q_end"] <= max_gap:
                home = block
                break
        if home is None:
            home = {"d_start": data_start, "d_end": data_start + length,
                    "q_start": query_start,
                    "q_end": query_start + length,
                    "diag": diagonal, "matched": length, "segments": 1}
            open_blocks.append(home)
        else:
            home["d_start"] = min(home["d_start"], data_start)
            home["d_end"] = max(home["d_end"], data_start + length)
            home["q_end"] = max(home["q_end"], query_start + length)
            home["matched"] += length
            home["segments"] += 1
            # Track the running diagonal so drift accumulates sanely.
            home["diag"] = diagonal
        # Retire blocks that can no longer accept segments.
        still_open = []
        for block in open_blocks:
            if query_start - block["q_end"] > max_gap:
                done.append(block)
            else:
                still_open.append(block)
        open_blocks = still_open
    done.extend(open_blocks)
    blocks = [SyntenyBlock(
        data_start=b["d_start"], data_end=b["d_end"],
        query_start=b["q_start"], query_end=b["q_end"],
        matched=b["matched"], segments=b["segments"]) for b in done]
    blocks.sort(key=lambda b: (b.query_start, b.data_start))
    return blocks
