"""Maximal matches, MUMs, and anchor chaining for pairwise alignment.

``find_maximal_matches`` is the paper's Section 4 operation: every
right-maximal matching substring between a data string (indexed) and a
query string, repetitions included, above a length threshold. MUMmer's
global alignment pipeline then keeps only the matches unique in both
sequences (MUMs) and chains the longest consistent subsequence of
anchors — both steps implemented here so the examples can run an
end-to-end alignment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.index import SpineIndex
from repro.core.matching import maximal_matches
from repro.exceptions import SearchError


@dataclass(frozen=True)
class AnchorChain:
    """Result of :func:`chain_anchors`."""

    anchors: tuple          # ((data_start, query_start, length), ...)
    total_matched: int      # sum of anchor lengths


def find_maximal_matches(data, query, min_length=20, index=None):
    """All right-maximal matches of ``query`` against ``data``.

    Builds a SPINE index over ``data`` unless one is supplied. Returns a
    list of ``(data_start, query_start, length)`` triples, one per
    (occurrence, match) pair, sorted by query position then data
    position — the paper's boldface output for its S1/S2 example.
    """
    if min_length < 1:
        raise SearchError("min_length must be >= 1")
    if index is None:
        # Cover the union of both strings' characters so query-only
        # characters act as plain mismatches rather than errors.
        from repro.alphabet import alphabet_for

        index = SpineIndex(data, alphabet=alphabet_for(data + query))
    matches, _ = maximal_matches(index, query, min_length=min_length)
    triples = []
    for match in matches:
        for data_start in match.data_starts:
            triples.append((data_start, match.query_start, match.length))
    triples.sort(key=lambda t: (t[1], t[0]))
    return triples


def find_mums(data, query, min_length=20, index=None):
    """Maximal unique matches: maximal matches occurring exactly once in
    *both* sequences (MUMmer's anchor definition)."""
    triples = find_maximal_matches(data, query, min_length=min_length,
                                   index=index)
    # Uniqueness in the data string: exactly one data occurrence for the
    # match event; uniqueness in the query: the same matched substring
    # must not be reported from two query positions.
    by_key = {}
    for data_start, query_start, length in triples:
        key = (query_start, length)
        by_key.setdefault(key, []).append(data_start)
    query_substring_counts = {}
    for (query_start, length), starts in by_key.items():
        word = query[query_start:query_start + length]
        query_substring_counts[word] = query_substring_counts.get(word, 0) + 1
    mums = []
    for (query_start, length), starts in sorted(by_key.items()):
        if len(starts) != 1:
            continue
        word = query[query_start:query_start + length]
        if query_substring_counts[word] != 1:
            continue
        mums.append((starts[0], query_start, length))
    return mums


def chain_anchors(anchors):
    """Longest consistent anchor chain (classic LIS-style chaining).

    ``anchors`` are ``(data_start, query_start, length)``; a chain is
    consistent when both coordinates strictly increase between
    successive anchors and the spans do not overlap. Maximizes total
    matched length via patience-sorting on the data coordinate with a
    weighted LIS (O(k^2) for simplicity — anchor sets are small).
    """
    if not anchors:
        return AnchorChain(anchors=(), total_matched=0)
    items = sorted(anchors, key=lambda t: (t[1], t[0]))
    k = len(items)
    best = [it[2] for it in items]  # best chain weight ending at i
    prev = [-1] * k
    for i in range(k):
        di, qi, li = items[i]
        for j in range(i):
            dj, qj, lj = items[j]
            if dj + lj <= di and qj + lj <= qi:
                if best[j] + li > best[i]:
                    best[i] = best[j] + li
                    prev[i] = j
    end = max(range(k), key=best.__getitem__)
    chain = []
    while end != -1:
        chain.append(items[end])
        end = prev[end]
    chain.reverse()
    return AnchorChain(anchors=tuple(chain),
                       total_matched=sum(a[2] for a in chain))


def align_anchors(data, query, min_length=20, unique_only=True):
    """End-to-end anchoring: find (unique) maximal matches and chain
    them. Returns an :class:`AnchorChain` — the skeleton a global
    aligner (MUMmer's pipeline) would fill in with local alignments."""
    finder = find_mums if unique_only else find_maximal_matches
    anchors = finder(data, query, min_length=min_length)
    return chain_anchors(anchors)


def coverage(chain, query_length):
    """Fraction of the query covered by a chain's anchors."""
    if query_length <= 0:
        raise SearchError("query_length must be positive")
    return min(1.0, chain.total_matched / query_length)
