"""Approximate pattern matching over a SPINE index.

The paper repeatedly credits suffix links with enabling "approximate
and substring matching" (its Section 7 critique of lazy suffix trees is
precisely that they cannot do this). This module supplies the classic
index-accelerated k-error search on top of SPINE:

*pigeonhole seeding* — split the pattern into ``k + 1`` pieces; any
occurrence with at most ``k`` edit errors must contain at least one
piece exactly, so the pieces' exact occurrences (a SPINE ``find_all``
each) enumerate a complete candidate set; *banded verification* — a
Sellers semi-global DP over a small window around each candidate
confirms real matches and their edit distances.

``sellers_scan`` (the direct O(nm) DP over the whole text) doubles as
the oracle in tests and as the baseline the seeded search is measured
against.
"""

from __future__ import annotations

from repro.core.index import SpineIndex
from repro.exceptions import SearchError


def sellers_scan(text, pattern, max_errors):
    """Direct semi-global DP: all ``(end, distance)`` with
    ``distance <= max_errors``.

    ``distance`` is the minimum edit distance between ``pattern`` and
    any substring of ``text`` ending at (1-indexed) position ``end``.
    O(len(text) * len(pattern)); the brute-force baseline.
    """
    _validate(pattern, max_errors)
    m = len(pattern)
    if m == 0:
        return [(end, 0) for end in range(len(text) + 1)]
    previous = list(range(m + 1))
    hits = []
    if previous[m] <= max_errors:
        hits.append((0, previous[m]))
    for j, ch in enumerate(text, start=1):
        current = [0] * (m + 1)
        for i in range(1, m + 1):
            cost = 0 if pattern[i - 1] == ch else 1
            current[i] = min(previous[i - 1] + cost,
                             previous[i] + 1,
                             current[i - 1] + 1)
        if current[m] <= max_errors:
            hits.append((j, current[m]))
        previous = current
    return hits


def _validate(pattern, max_errors):
    if max_errors < 0:
        raise SearchError("max_errors must be non-negative")
    if pattern == "":
        return


def _find_all_safe(index, piece):
    """``find_all`` treating characters outside the index alphabet as
    simply absent (a piece containing them cannot occur exactly)."""
    from repro.exceptions import AlphabetError

    try:
        return index.find_all(piece)
    except AlphabetError:
        return []


def _pieces(pattern, count):
    """Split ``pattern`` into ``count`` contiguous near-equal pieces,
    returned as ``(offset, piece)`` pairs."""
    m = len(pattern)
    base, extra = divmod(m, count)
    pieces = []
    offset = 0
    for i in range(count):
        length = base + (1 if i < extra else 0)
        pieces.append((offset, pattern[offset:offset + length]))
        offset += length
    return pieces


def approximate_find_all(index, pattern, max_errors):
    """All ``(end, distance)`` pairs with ``distance <= max_errors``.

    Semantics identical to :func:`sellers_scan` on the indexed text,
    but the text is only touched inside candidate windows discovered by
    the pigeonhole seeds — the payoff of having the index.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.index.SpineIndex` (or anything with
        ``find_all``, ``text`` and ``__len__``).
    pattern, max_errors:
        The query and its error budget (edit distance: substitutions,
        insertions, deletions).
    """
    _validate(pattern, max_errors)
    text = index.text
    n = len(text)
    m = len(pattern)
    if m == 0:
        return [(end, 0) for end in range(n + 1)]
    if max_errors >= m:
        # Deleting the whole pattern costs m <= max_errors: every
        # position qualifies (distance capped by the empty match).
        return [(end, min(m, _best_local(text, pattern, end)))
                for end in range(n + 1)]
    if max_errors == 0:
        return [(start + m, 0)
                for start in _find_all_safe(index, pattern)]

    windows = []
    for offset, piece in _pieces(pattern, max_errors + 1):
        if not piece:
            continue
        for hit in _find_all_safe(index, piece):
            # Pattern aligned around this exact piece: its end lies
            # within max_errors of the error-free position.
            lo = hit - offset - max_errors
            hi = hit - offset + m + max_errors
            windows.append((max(0, lo), min(n, hi)))
    if not windows:
        return []
    windows.sort()
    merged = [windows[0]]
    for lo, hi in windows[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    best = {}
    for lo, hi in merged:
        for end, dist in sellers_scan(text[lo:hi], pattern, max_errors):
            global_end = lo + end
            if lo > 0 and end == 0:
                # A zero-length prefix inside a window is only the
                # window boundary, not a real text prefix; the DP for
                # the enclosing window already covers the real ends.
                continue
            current = best.get(global_end)
            if current is None or dist < current:
                best[global_end] = dist
    return sorted(best.items())


def _best_local(text, pattern, end):
    """Exact minimal distance at ``end`` for the trivial-budget path."""
    window = text[max(0, end - 2 * len(pattern)):end]
    hits = dict(sellers_scan(window, pattern, len(pattern)))
    return hits.get(len(window), len(pattern))


def hamming_find_all(index, pattern, max_mismatches):
    """All ``(start, mismatches)`` with Hamming distance at most
    ``max_mismatches`` (fixed-length, substitutions only).

    The cheaper cousin of :func:`approximate_find_all` for SNP-style
    queries: pigeonhole seeds from the index, then one vectorized
    mismatch count over the candidate starts.
    """
    import numpy as np

    if max_mismatches < 0:
        raise SearchError("max_mismatches must be non-negative")
    text = index.text
    n = len(text)
    m = len(pattern)
    if m == 0 or m > n:
        return []
    if max_mismatches >= m:
        # Every window qualifies (at most m mismatches are possible);
        # pigeonhole seeding is void here — report all distances.
        candidates = set(range(n - m + 1))
        return _verify_hamming(text, pattern, candidates, m)
    candidates = set()
    if max_mismatches == 0:
        return [(start, 0) for start in _find_all_safe(index, pattern)]
    for offset, piece in _pieces(pattern, max_mismatches + 1):
        if not piece:
            continue
        for hit in _find_all_safe(index, piece):
            start = hit - offset
            if 0 <= start <= n - m:
                candidates.add(start)
    if not candidates:
        return []
    return _verify_hamming(text, pattern, candidates, m,
                           max_mismatches)


def _verify_hamming(text, pattern, candidates, m, max_mismatches=None):
    """Vectorized mismatch counting over candidate start positions."""
    import numpy as np

    starts = np.array(sorted(candidates), dtype=np.int64)
    text_arr = np.frombuffer(text.encode("latin-1"), dtype=np.uint8)
    pat_arr = np.frombuffer(pattern.encode("latin-1"), dtype=np.uint8)
    windows = text_arr[starts[:, None] + np.arange(m)]
    mismatches = (windows != pat_arr).sum(axis=1)
    if max_mismatches is not None:
        keep = mismatches <= max_mismatches
        starts, mismatches = starts[keep], mismatches[keep]
    return [(int(s), int(d)) for s, d in zip(starts, mismatches)]


def hamming_scan(text, pattern, max_mismatches):
    """Brute-force Hamming occurrences (oracle and tiny-input path)."""
    if max_mismatches < 0:
        raise SearchError("max_mismatches must be non-negative")
    m = len(pattern)
    out = []
    for start in range(len(text) - m + 1):
        distance = sum(1 for a, b in zip(text[start:start + m], pattern)
                       if a != b)
        if distance <= max_mismatches:
            out.append((start, distance))
    return out


def approximate_occurrences(data, pattern, max_errors, index=None):
    """Convenience wrapper returning merged occurrence intervals.

    Returns a list of ``(start_hint, end, distance)`` triples, one per
    locally-minimal match end (ends whose distance is no worse than
    both neighbours), with ``start_hint = end - len(pattern)`` clamped
    to 0 — a practical report format for display purposes.
    """
    if index is None:
        index = SpineIndex(data)
    hits = approximate_find_all(index, pattern, max_errors)
    results = []
    for i, (end, dist) in enumerate(hits):
        left = hits[i - 1][1] if i > 0 and hits[i - 1][0] == end - 1 \
            else max_errors + 1
        right = hits[i + 1][1] if i + 1 < len(hits) \
            and hits[i + 1][0] == end + 1 else max_errors + 1
        if dist <= left and dist <= right:
            results.append((max(0, end - len(pattern)), end, dist))
    return results
