"""Concurrent query serving over a SPINE index.

Two pieces:

:class:`SnapshotGuard`
    Captures ``len(index)`` and answers every query against that
    prefix, exploiting the Section 2.7 prefix property: the index of a
    prefix of the data string is an initial fragment of the full
    index — edges planted after character ``k`` always point past
    ``k``, and existing entries are never relabeled. Bounding a
    traversal and the occurrence scan to the captured length therefore
    reads a consistent index even while ``extend`` appends
    concurrently — with **no locking at all** on the in-memory layers
    (appends to the backing lists/arrays are atomic under CPython, and
    readers simply refuse to follow edges across the boundary).

:class:`QueryService`
    A thread-pool query driver. Reads (``contains`` / ``find_all`` /
    ``batch_find_all``) run against a snapshot taken at call entry;
    writes (``extend``) are serialized through a mutex. On the disk
    layer, where mutation rewrites Link-Table entries in place and
    migrates Rib-Table rows (so no lock-free snapshot exists), the
    index's own read-write lock — taken inside the index methods and
    :func:`repro.core.batch.batch_find_all` — provides the
    writer-excludes-readers guarantee; the service deliberately takes
    no read locks itself to avoid nesting a non-reentrant lock.

Resilience (see ``docs/serving.md`` § Resilience). Every read-style
call accepts a per-call ``deadline`` (seconds) overriding the service
``default_deadline``; expiry is noticed at cooperative checkpoints in
the traversal and scan loops and surfaces as
:class:`~repro.exceptions.DeadlineExceededError` — never a late or
wrong answer. ``max_concurrent``/``max_queue`` put an
:class:`~repro.resilience.AdmissionController` in front of the reads
(excess load sheds with :class:`~repro.exceptions.OverloadedError`),
``degraded=True`` lets a sharded index answer partially
(:class:`~repro.resilience.PartialResult`) instead of failing the
fan-out, and :meth:`QueryService.close` cancels in-flight work via the
shared shutdown event and returns within ``close_timeout`` even when a
query is stuck on a hung page read.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.batch import (batch_find_all, check_executor_open,
                              contains_at, find_all_at)
from repro.exceptions import DeadlineExceededError, ServiceClosedError
from repro.obs import get_registry
from repro.obs.slowlog import get_slow_log
from repro.resilience import (AdmissionController, CancellationToken,
                              Deadline)

__all__ = ["QueryService", "SnapshotGuard"]


class SnapshotGuard:
    """A read view of ``index`` frozen at construction time.

    All queries answer against the prefix of length :attr:`limit`
    (the index length when the guard was taken). See the module
    docstring for why this is consistent without locks on the
    in-memory layers.

    Composite indexes (:class:`repro.shard.ShardedSpineIndex`) expose
    their own bounded query methods (``contains_at`` / ``find_all_at``
    / a ``limit``-aware ``batch_find_all``); the guard delegates to
    those when present so per-shard routing stays inside the index,
    and falls back to the flat single-index implementations in
    :mod:`repro.core.batch` otherwise.

    ``cancel`` parameters take a
    :class:`~repro.resilience.CancellationToken`; ``degraded`` is
    meaningful only for composite indexes (a flat index has no shards
    to lose) and is ignored by the flat fallback.
    """

    __slots__ = ("index", "limit")

    def __init__(self, index, limit=None):
        self.index = index
        self.limit = len(index) if limit is None else min(limit,
                                                          len(index))

    def __len__(self):
        return self.limit

    def contains(self, pattern, cancel=None):
        """``pattern in prefix`` (clean False on foreign characters)."""
        bound = getattr(self.index, "contains_at", None)
        if bound is not None:
            return bound(pattern, self.limit, cancel=cancel)
        return contains_at(self.index, pattern, self.limit, cancel)

    def find_all(self, pattern, cancel=None, degraded=None):
        """Sorted starts of all occurrences within the snapshot."""
        bound = getattr(self.index, "find_all_at", None)
        if bound is not None:
            return bound(pattern, self.limit, cancel=cancel,
                         degraded=degraded)
        return find_all_at(self.index, pattern, self.limit, cancel)

    def batch_find_all(self, patterns, threads=1, executor=None,
                       cancel=None, degraded=None):
        """Batched multi-pattern query bounded to the snapshot.

        ``executor``, when given, is authoritative: the traversal phase
        runs on it with its own sizing and ``threads`` is ignored.
        ``threads`` only sizes a temporary pool when no executor is
        passed. ``threads < 1`` is rejected either way, and an executor
        that has already been shut down is rejected with
        :class:`~repro.exceptions.ServiceClosedError` before any
        traversal starts.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        check_executor_open(executor)
        bound = getattr(self.index, "batch_find_all", None)
        if bound is not None:
            return bound(patterns, threads=threads, limit=self.limit,
                         executor=executor, cancel=cancel,
                         degraded=degraded)
        return batch_find_all(self.index, patterns, threads=threads,
                              limit=self.limit, executor=executor,
                              cancel=cancel)


class QueryService:
    """Thread-pool front end for serving queries over one index.

    Parameters
    ----------
    index:
        Any traversal layer. A disk index is switched into its latched
        buffer-pool mode up front so worker threads can share frames
        safely.
    threads:
        Size of the worker pool used for batch traversal phases.
    stats_port / stats_host:
        When ``stats_port`` is not ``None``, the service owns a
        :class:`~repro.obs.health.StatsServer` bound there (``0`` picks
        an ephemeral port), serving ``/metrics``, ``/healthz`` and
        ``/stats`` over this index until :meth:`close`. The running
        server is exposed as :attr:`stats_server`.
    default_deadline:
        Per-query wall-clock budget in seconds applied when a call
        passes no ``deadline`` of its own; ``None`` (default) leaves
        queries unbounded.
    max_concurrent / max_queue:
        When either is set, reads pass through an
        :class:`~repro.resilience.AdmissionController`:
        ``max_concurrent`` (default: ``threads``) queries run at once,
        ``max_queue`` (default 0) more wait, the rest shed immediately
        with :class:`~repro.exceptions.OverloadedError`. ``None`` for
        both (the default) means no admission gate at all.
    degraded:
        Service-wide default for the sharded degraded mode: ``True``
        turns shard failures into
        :class:`~repro.resilience.PartialResult` answers instead of
        errors. Per-call ``degraded=`` overrides. Ignored for flat
        indexes.
    close_timeout:
        Upper bound in seconds that :meth:`close` waits for in-flight
        queries. Cancellation is cooperative (the shutdown event fires
        every in-flight token at its next checkpoint), so this is a
        backstop for queries stuck inside a single hung I/O call, not
        the expected drain time.

    Use as a context manager, or call :meth:`close` to release the
    pool. The service may outlive many snapshots; each read-style call
    takes a fresh one. Queries slower than the global slow-query-log
    threshold (:func:`repro.obs.slowlog.get_slow_log`, off by default)
    are recorded with their structured context — including
    ``timed_out`` / ``degraded`` tags when resilience kicked in.
    """

    def __init__(self, index, threads=4, stats_port=None,
                 stats_host="127.0.0.1", default_deadline=None,
                 max_concurrent=None, max_queue=None, degraded=False,
                 close_timeout=5.0):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive "
                             "seconds or None")
        if close_timeout < 0:
            raise ValueError("close_timeout must be >= 0")
        self.index = index
        self.threads = threads
        self.default_deadline = default_deadline
        self.degraded = degraded
        self.close_timeout = close_timeout
        self._write_mutex = threading.Lock()
        enable = getattr(index, "enable_concurrent_reads", None)
        if enable is not None:
            enable()
        self._executor = (ThreadPoolExecutor(
            max_workers=threads,
            thread_name_prefix="repro-serve")
            if threads > 1 else None)
        self._closed = False
        self._shutdown = threading.Event()
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self.admission = None
        if max_concurrent is not None or max_queue is not None:
            self.admission = AdmissionController(
                max_concurrent if max_concurrent is not None
                else threads,
                max_queue if max_queue is not None else 0)
        self.stats_server = None
        if stats_port is not None:
            # Imported here so the serving core has no HTTP dependency
            # unless a stats endpoint is actually requested.
            from repro.obs.health import StatsServer

            self.stats_server = StatsServer(
                index=index, service=self,
                host=stats_host, port=stats_port)

    # -- reads ---------------------------------------------------------

    def snapshot(self):
        """A :class:`SnapshotGuard` over the index as of now."""
        return SnapshotGuard(self.index)

    def _token(self, deadline, op):
        """The cancellation token for one read call.

        Always carries the service shutdown event (so ``close()`` can
        cancel any in-flight query); carries a
        :class:`~repro.resilience.Deadline` when the call or the
        service configured one.
        """
        budget = deadline if deadline is not None \
            else self.default_deadline
        return CancellationToken(
            Deadline.after(budget) if budget is not None else None,
            self._shutdown, op=op)

    def _enter(self):
        with self._inflight_cond:
            self._inflight += 1
        registry = get_registry()
        if registry.enabled:
            registry.gauge("serve.inflight").set(self._inflight)

    def _exit(self):
        with self._inflight_cond:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cond.notify_all()
        registry = get_registry()
        if registry.enabled:
            registry.gauge("serve.inflight").set(self._inflight)

    def contains(self, pattern, deadline=None):
        """Membership within a fresh snapshot (deadline-bounded)."""
        self._check_open()
        token = self._token(deadline, "contains")
        admitted = (self.admission.admit(token)
                    if self.admission is not None else None)
        self._enter()
        try:
            return self.snapshot().contains(pattern, cancel=token)
        finally:
            self._exit()
            if admitted is not None:
                admitted.__exit__()

    def find_all(self, pattern, deadline=None, degraded=None):
        """All occurrences within a fresh snapshot.

        ``deadline`` (seconds) bounds this call; ``degraded``
        overrides the service default for sharded indexes. A timed-out
        or degraded query is tagged as such in the slow-query log.
        """
        self._check_open()
        token = self._token(deadline, "find_all")
        if degraded is None:
            degraded = self.degraded
        admitted = (self.admission.admit(token)
                    if self.admission is not None else None)
        self._enter()
        slow_log = get_slow_log()
        started = time.perf_counter()
        try:
            starts = self.snapshot().find_all(pattern, cancel=token,
                                              degraded=degraded)
        except DeadlineExceededError:
            if slow_log.enabled:
                slow_log.observe(
                    "find_all", time.perf_counter() - started,
                    pattern_chars=len(pattern), timed_out=True,
                    layer=type(self.index).__name__)
            raise
        finally:
            self._exit()
            if admitted is not None:
                admitted.__exit__()
        if slow_log.enabled:
            incomplete = getattr(starts, "complete", True) is False
            slow_log.observe(
                "find_all", time.perf_counter() - started,
                pattern_chars=len(pattern), occurrences=len(starts),
                degraded=incomplete,
                layer=type(self.index).__name__)
        return starts

    def batch_find_all(self, patterns, deadline=None, degraded=None):
        """Batched query with the traversal phase on the worker pool.

        A ``close()`` racing an in-flight call can tear the worker pool
        out from under the traversal phase; the executor's raw
        ``RuntimeError`` ("cannot schedule new futures after shutdown")
        is translated to :class:`~repro.exceptions.ServiceClosedError`
        so callers see the same structured error as a call made after
        the close completed. ``deadline`` / ``degraded`` behave as in
        :meth:`find_all`.
        """
        self._check_open()
        token = self._token(deadline, "batch_find_all")
        if degraded is None:
            degraded = self.degraded
        admitted = (self.admission.admit(token)
                    if self.admission is not None else None)
        self._enter()
        slow_log = get_slow_log()
        started = time.perf_counter()
        try:
            results = self.snapshot().batch_find_all(
                patterns, threads=self.threads,
                executor=self._executor, cancel=token,
                degraded=degraded)
        except DeadlineExceededError:
            if slow_log.enabled:
                slow_log.observe(
                    "batch_find_all", time.perf_counter() - started,
                    timed_out=True, layer=type(self.index).__name__)
            raise
        except ServiceClosedError:
            raise
        except RuntimeError as exc:
            if self._closed and "shutdown" in str(exc):
                raise ServiceClosedError(
                    "QueryService closed during batch_find_all") from exc
            raise
        finally:
            self._exit()
            if admitted is not None:
                admitted.__exit__()
        if slow_log.enabled:
            incomplete = any(
                getattr(m.starts, "complete", True) is False
                for m in results)
            slow_log.observe(
                "batch_find_all", time.perf_counter() - started,
                patterns=len(results),
                pattern_chars=sum(len(m.pattern) for m in results),
                occurrences=sum(len(m.starts) for m in results),
                degraded=incomplete,
                layer=type(self.index).__name__)
        return results

    # -- writes --------------------------------------------------------

    def extend(self, text):
        """Append ``text`` to the indexed string.

        Writers are serialized through the service mutex; on the disk
        layer the index's write lock additionally excludes in-flight
        readers, while in-memory readers keep running against their
        snapshots untouched.
        """
        self._check_open()
        with self._write_mutex:
            self.index.extend(text)

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self):
        """True once :meth:`close` has run (drives ``/healthz``)."""
        return self._closed

    @property
    def inflight(self):
        """Read-style calls currently executing."""
        with self._inflight_cond:
            return self._inflight

    def _check_open(self):
        if self._closed:
            raise ServiceClosedError("QueryService is closed")

    def close(self, timeout=None):
        """Shut down within a bounded time (idempotent; index stays
        open).

        Sets the shutdown event — every in-flight query's cancellation
        token notices at its next checkpoint and aborts with
        :class:`~repro.exceptions.ServiceClosedError` — then waits up
        to ``timeout`` (default :attr:`close_timeout`) for in-flight
        calls to drain, and finally tears the pool down with
        ``cancel_futures=True`` so queued-but-unstarted traversals are
        dropped rather than waited for. A query stuck inside a single
        hung I/O call cannot be cancelled cooperatively; after the
        timeout it is abandoned to finish (and fail its token's next
        poll) in the background rather than holding ``close()``
        hostage.
        """
        if self._closed:
            return
        self._closed = True
        self._shutdown.set()
        timeout = self.close_timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout
        with self._inflight_cond:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cond.wait(min(remaining, 0.05))
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self.stats_server is not None:
            self.stats_server.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
