"""Concurrent query serving over a SPINE index.

Two pieces:

:class:`SnapshotGuard`
    Captures ``len(index)`` and answers every query against that
    prefix, exploiting the Section 2.7 prefix property: the index of a
    prefix of the data string is an initial fragment of the full
    index — edges planted after character ``k`` always point past
    ``k``, and existing entries are never relabeled. Bounding a
    traversal and the occurrence scan to the captured length therefore
    reads a consistent index even while ``extend`` appends
    concurrently — with **no locking at all** on the in-memory layers
    (appends to the backing lists/arrays are atomic under CPython, and
    readers simply refuse to follow edges across the boundary).

:class:`QueryService`
    A thread-pool query driver. Reads (``contains`` / ``find_all`` /
    ``batch_find_all``) run against a snapshot taken at call entry;
    writes (``extend``) are serialized through a mutex. On the disk
    layer, where mutation rewrites Link-Table entries in place and
    migrates Rib-Table rows (so no lock-free snapshot exists), the
    index's own read-write lock — taken inside the index methods and
    :func:`repro.core.batch.batch_find_all` — provides the
    writer-excludes-readers guarantee; the service deliberately takes
    no read locks itself to avoid nesting a non-reentrant lock.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.batch import (batch_find_all, contains_at, find_all_at)
from repro.exceptions import ServiceClosedError
from repro.obs.slowlog import get_slow_log

__all__ = ["QueryService", "SnapshotGuard"]


class SnapshotGuard:
    """A read view of ``index`` frozen at construction time.

    All queries answer against the prefix of length :attr:`limit`
    (the index length when the guard was taken). See the module
    docstring for why this is consistent without locks on the
    in-memory layers.

    Composite indexes (:class:`repro.shard.ShardedSpineIndex`) expose
    their own bounded query methods (``contains_at`` / ``find_all_at``
    / a ``limit``-aware ``batch_find_all``); the guard delegates to
    those when present so per-shard routing stays inside the index,
    and falls back to the flat single-index implementations in
    :mod:`repro.core.batch` otherwise.
    """

    __slots__ = ("index", "limit")

    def __init__(self, index, limit=None):
        self.index = index
        self.limit = len(index) if limit is None else min(limit,
                                                          len(index))

    def __len__(self):
        return self.limit

    def contains(self, pattern):
        """``pattern in prefix`` (clean False on foreign characters)."""
        bound = getattr(self.index, "contains_at", None)
        if bound is not None:
            return bound(pattern, self.limit)
        return contains_at(self.index, pattern, self.limit)

    def find_all(self, pattern):
        """Sorted starts of all occurrences within the snapshot."""
        bound = getattr(self.index, "find_all_at", None)
        if bound is not None:
            return bound(pattern, self.limit)
        return find_all_at(self.index, pattern, self.limit)

    def batch_find_all(self, patterns, threads=1, executor=None):
        """Batched multi-pattern query bounded to the snapshot.

        ``executor``, when given, is authoritative: the traversal phase
        runs on it with its own sizing and ``threads`` is ignored.
        ``threads`` only sizes a temporary pool when no executor is
        passed. ``threads < 1`` is rejected either way.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        bound = getattr(self.index, "batch_find_all", None)
        if bound is not None:
            return bound(patterns, threads=threads, limit=self.limit,
                         executor=executor)
        return batch_find_all(self.index, patterns, threads=threads,
                              limit=self.limit, executor=executor)


class QueryService:
    """Thread-pool front end for serving queries over one index.

    Parameters
    ----------
    index:
        Any traversal layer. A disk index is switched into its latched
        buffer-pool mode up front so worker threads can share frames
        safely.
    threads:
        Size of the worker pool used for batch traversal phases.
    stats_port / stats_host:
        When ``stats_port`` is not ``None``, the service owns a
        :class:`~repro.obs.health.StatsServer` bound there (``0`` picks
        an ephemeral port), serving ``/metrics``, ``/healthz`` and
        ``/stats`` over this index until :meth:`close`. The running
        server is exposed as :attr:`stats_server`.

    Use as a context manager, or call :meth:`close` to release the
    pool. The service may outlive many snapshots; each read-style call
    takes a fresh one. Queries slower than the global slow-query-log
    threshold (:func:`repro.obs.slowlog.get_slow_log`, off by default)
    are recorded with their structured context.
    """

    def __init__(self, index, threads=4, stats_port=None,
                 stats_host="127.0.0.1"):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.index = index
        self.threads = threads
        self._write_mutex = threading.Lock()
        enable = getattr(index, "enable_concurrent_reads", None)
        if enable is not None:
            enable()
        self._executor = (ThreadPoolExecutor(
            max_workers=threads,
            thread_name_prefix="repro-serve")
            if threads > 1 else None)
        self._closed = False
        self.stats_server = None
        if stats_port is not None:
            # Imported here so the serving core has no HTTP dependency
            # unless a stats endpoint is actually requested.
            from repro.obs.health import StatsServer

            self.stats_server = StatsServer(
                index=index, service=self,
                host=stats_host, port=stats_port)

    # -- reads ---------------------------------------------------------

    def snapshot(self):
        """A :class:`SnapshotGuard` over the index as of now."""
        return SnapshotGuard(self.index)

    def contains(self, pattern):
        return self.snapshot().contains(pattern)

    def find_all(self, pattern):
        slow_log = get_slow_log()
        if not slow_log.enabled:
            return self.snapshot().find_all(pattern)
        started = time.perf_counter()
        starts = self.snapshot().find_all(pattern)
        slow_log.observe(
            "find_all", time.perf_counter() - started,
            pattern_chars=len(pattern), occurrences=len(starts),
            layer=type(self.index).__name__)
        return starts

    def batch_find_all(self, patterns):
        """Batched query with the traversal phase on the worker pool.

        A ``close()`` racing an in-flight call can tear the worker pool
        out from under the traversal phase; the executor's raw
        ``RuntimeError`` ("cannot schedule new futures after shutdown")
        is translated to :class:`~repro.exceptions.ServiceClosedError`
        so callers see the same structured error as a call made after
        the close completed.
        """
        self._check_open()
        slow_log = get_slow_log()
        started = (time.perf_counter() if slow_log.enabled else None)
        try:
            results = self.snapshot().batch_find_all(
                patterns, threads=self.threads, executor=self._executor)
        except ServiceClosedError:
            raise
        except RuntimeError as exc:
            if self._closed and "shutdown" in str(exc):
                raise ServiceClosedError(
                    "QueryService closed during batch_find_all") from exc
            raise
        if started is not None:
            slow_log.observe(
                "batch_find_all", time.perf_counter() - started,
                patterns=len(results),
                pattern_chars=sum(len(m.pattern) for m in results),
                occurrences=sum(len(m.starts) for m in results),
                layer=type(self.index).__name__)
        return results

    # -- writes --------------------------------------------------------

    def extend(self, text):
        """Append ``text`` to the indexed string.

        Writers are serialized through the service mutex; on the disk
        layer the index's write lock additionally excludes in-flight
        readers, while in-memory readers keep running against their
        snapshots untouched.
        """
        self._check_open()
        with self._write_mutex:
            self.index.extend(text)

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self):
        """True once :meth:`close` has run (drives ``/healthz``)."""
        return self._closed

    def _check_open(self):
        if self._closed:
            raise ServiceClosedError("QueryService is closed")

    def close(self):
        """Shut down the worker pool (idempotent; index stays open)."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.stats_server is not None:
            self.stats_server.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
