"""Concurrent query serving over a SPINE index.

Two pieces:

:class:`SnapshotGuard`
    Captures ``len(index)`` and answers every query against that
    prefix, exploiting the Section 2.7 prefix property: the index of a
    prefix of the data string is an initial fragment of the full
    index — edges planted after character ``k`` always point past
    ``k``, and existing entries are never relabeled. Bounding a
    traversal and the occurrence scan to the captured length therefore
    reads a consistent index even while ``extend`` appends
    concurrently — with **no locking at all** on the in-memory layers
    (appends to the backing lists/arrays are atomic under CPython, and
    readers simply refuse to follow edges across the boundary).

:class:`QueryService`
    A thread-pool query driver. Reads (``contains`` / ``find_all`` /
    ``batch_find_all``) run against a snapshot taken at call entry;
    writes (``extend``) are serialized through a mutex. On the disk
    layer, where mutation rewrites Link-Table entries in place and
    migrates Rib-Table rows (so no lock-free snapshot exists), the
    index's own read-write lock — taken inside the index methods and
    :func:`repro.core.batch.batch_find_all` — provides the
    writer-excludes-readers guarantee; the service deliberately takes
    no read locks itself to avoid nesting a non-reentrant lock.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.batch import (batch_find_all, contains_at, find_all_at)

__all__ = ["QueryService", "SnapshotGuard"]


class SnapshotGuard:
    """A read view of ``index`` frozen at construction time.

    All queries answer against the prefix of length :attr:`limit`
    (the index length when the guard was taken). See the module
    docstring for why this is consistent without locks on the
    in-memory layers.
    """

    __slots__ = ("index", "limit")

    def __init__(self, index, limit=None):
        self.index = index
        self.limit = len(index) if limit is None else min(limit,
                                                          len(index))

    def __len__(self):
        return self.limit

    def contains(self, pattern):
        """``pattern in prefix`` (clean False on foreign characters)."""
        return contains_at(self.index, pattern, self.limit)

    def find_all(self, pattern):
        """Sorted starts of all occurrences within the snapshot."""
        return find_all_at(self.index, pattern, self.limit)

    def batch_find_all(self, patterns, threads=1, executor=None):
        """Batched multi-pattern query bounded to the snapshot."""
        return batch_find_all(self.index, patterns, threads=threads,
                              limit=self.limit, executor=executor)


class QueryService:
    """Thread-pool front end for serving queries over one index.

    Parameters
    ----------
    index:
        Any traversal layer. A disk index is switched into its latched
        buffer-pool mode up front so worker threads can share frames
        safely.
    threads:
        Size of the worker pool used for batch traversal phases.

    Use as a context manager, or call :meth:`close` to release the
    pool. The service may outlive many snapshots; each read-style call
    takes a fresh one.
    """

    def __init__(self, index, threads=4):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.index = index
        self.threads = threads
        self._write_mutex = threading.Lock()
        enable = getattr(index, "enable_concurrent_reads", None)
        if enable is not None:
            enable()
        self._executor = (ThreadPoolExecutor(
            max_workers=threads,
            thread_name_prefix="repro-serve")
            if threads > 1 else None)
        self._closed = False

    # -- reads ---------------------------------------------------------

    def snapshot(self):
        """A :class:`SnapshotGuard` over the index as of now."""
        return SnapshotGuard(self.index)

    def contains(self, pattern):
        return self.snapshot().contains(pattern)

    def find_all(self, pattern):
        return self.snapshot().find_all(pattern)

    def batch_find_all(self, patterns):
        """Batched query with the traversal phase on the worker pool."""
        self._check_open()
        return self.snapshot().batch_find_all(
            patterns, threads=self.threads, executor=self._executor)

    # -- writes --------------------------------------------------------

    def extend(self, text):
        """Append ``text`` to the indexed string.

        Writers are serialized through the service mutex; on the disk
        layer the index's write lock additionally excludes in-flight
        readers, while in-memory readers keep running against their
        snapshots untouched.
        """
        self._check_open()
        with self._write_mutex:
            self.index.extend(text)

    # -- lifecycle -----------------------------------------------------

    def _check_open(self):
        if self._closed:
            raise RuntimeError("QueryService is closed")

    def close(self):
        """Shut down the worker pool (idempotent; index stays open)."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
