"""repro — a reproduction of "SPINE: Putting Backbone into String
Indexing" (Neelapala, Mittal & Haritsa, ICDE 2004).

SPINE is a *horizontally compacted* suffix trie: the whole trie
collapses onto a linear backbone of ``n + 1`` nodes connected by
vertebras, ribs, extribs and links, with numeric PT/PRT/LEL labels
excluding false positives. This package implements the index, every
substrate its evaluation depends on (suffix tree / suffix array / DAWG
baselines, synthetic genome corpus, page-level disk subsystem), and one
experiment module per paper table and figure.

Quick start::

    from repro import SpineIndex
    idx = SpineIndex("aaccacaaca")
    idx.find_all("ac")            # [1, 4, 7]
    idx.contains("accaa")         # False (the paper's false positive)

See README.md for the full tour and ``python -m repro.experiments`` for
the evaluation.
"""

from repro.alphabet import (
    Alphabet,
    alphabet_for,
    dna_alphabet,
    protein_alphabet,
)
from repro.core import (
    BatchMatch,
    GeneralizedSpineIndex,
    SpineIndex,
    batch_find_all,
    collect_statistics,
    load_index,
    longest_common_substring,
    longest_repeated_substring,
    matching_statistics,
    maximal_matches,
    save_index,
    verify_index,
)
from repro.core.packed import PackedSpineIndex
from repro.serve import QueryService, SnapshotGuard
from repro.shard import ShardedSpineIndex
from repro.exceptions import (
    AlphabetError,
    CircuitOpenError,
    ConstructionError,
    CorpusError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    RetryExhaustedError,
    SearchError,
    ServiceClosedError,
    StorageError,
    VerificationError,
)
from repro.resilience import (
    AdmissionController,
    CancellationToken,
    CircuitBreaker,
    Deadline,
    PartialResult,
    RetryPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "Alphabet",
    "alphabet_for",
    "dna_alphabet",
    "protein_alphabet",
    "SpineIndex",
    "GeneralizedSpineIndex",
    "PackedSpineIndex",
    "BatchMatch",
    "batch_find_all",
    "QueryService",
    "ServiceClosedError",
    "ShardedSpineIndex",
    "SnapshotGuard",
    "AdmissionController",
    "CancellationToken",
    "CircuitBreaker",
    "Deadline",
    "PartialResult",
    "RetryPolicy",
    "collect_statistics",
    "load_index",
    "longest_common_substring",
    "longest_repeated_substring",
    "matching_statistics",
    "maximal_matches",
    "save_index",
    "verify_index",
    "ReproError",
    "AlphabetError",
    "CircuitOpenError",
    "ConstructionError",
    "CorpusError",
    "DeadlineExceededError",
    "OverloadedError",
    "RetryExhaustedError",
    "SearchError",
    "StorageError",
    "VerificationError",
    "__version__",
]
