"""Figure 6: in-memory construction times, SPINE vs suffix tree.

The paper's findings: construction costs are comparable (SPINE slightly
faster), and — the headline — the suffix tree *runs out of memory* on
HC19 while SPINE completes, because SPINE needs ~30 % less space. The
scaled reproduction keeps the 1 GB budget proportional to the corpus
scaling, so the same OOM boundary falls on the same genome.
"""

from __future__ import annotations

import time

from repro.core import SpineIndex
from repro.core.packed import PackedSpineIndex
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    GENOMES, MEMORY_SCALE, effective_scale, genome, memory_budget_bytes)
from repro.suffixtree import SuffixTree, SUFFIX_TREE_BYTES_PER_CHAR

#: Construction-time memory expansion over the final index (working
#: state, unconsumed input): suffix trees pay more because the text must
#: stay resident alongside the tree.
ST_BUILD_OVERHEAD = 1.25
SPINE_BUILD_OVERHEAD = 1.10


def st_estimated_build_bytes(n):
    return n * SUFFIX_TREE_BYTES_PER_CHAR["standard"] * ST_BUILD_OVERHEAD


def spine_estimated_build_bytes(n):
    # The paper's measured < 12 B/char plus online working state.
    return n * 12.0 * SPINE_BUILD_OVERHEAD


@register("fig6")
def run(scale=None, genomes=None):
    scale = effective_scale(MEMORY_SCALE, scale)
    genomes = genomes or GENOMES
    budget = memory_budget_bytes(scale)
    rows = []
    spine_always_completes = True
    st_oom_somewhere = False
    for name in genomes:
        text = genome(name, scale)
        n = len(text)
        if spine_estimated_build_bytes(n) > budget:
            spine_cell = "OOM"
            spine_always_completes = False
            spine_secs = None
        else:
            t0 = time.perf_counter()
            index = SpineIndex(text)
            spine_secs = time.perf_counter() - t0
            spine_cell = round(spine_secs, 3)
            del index
        if st_estimated_build_bytes(n) > budget:
            st_cell = "OOM"
            st_oom_somewhere = True
            st_secs = None
        else:
            t0 = time.perf_counter()
            tree = SuffixTree(text)
            st_secs = time.perf_counter() - t0
            st_cell = round(st_secs, 3)
            del tree
        rows.append((name, n, st_cell, spine_cell))
    return ExperimentResult(
        experiment_id="fig6",
        title="Index construction times, in memory (seconds)",
        headers=["Genome", "Length", "ST", "SPINE"],
        rows=rows,
        paper_headers=["Finding", "Paper"],
        paper_rows=[
            ("construction cost", "< 2 s per Mbp for both"),
            ("relative speed", "SPINE marginally faster"),
            ("HC19 under 1 GB", "ST out of memory; SPINE completes"),
            ("max string length", "SPINE handles ~30% longer strings"),
        ],
        notes=(f"scale={scale}; memory budget scaled to "
               f"{budget / 1e6:.1f} MB (1 GiB * scale / 1e6). Shape "
               "criteria: SPINE completes everywhere "
               f"({'HOLDS' if spine_always_completes else 'VIOLATED'}); "
               "ST exceeds the budget on the longest genome "
               f"({'HOLDS' if st_oom_somewhere else 'VIOLATED'})."),
        data={"budget_bytes": budget,
              "st_oom": st_oom_somewhere,
              "spine_completes": spine_always_completes,
              "chart": ("Construction time (s)", " s",
                        [(f"{name} {kind}", cell)
                         for name, _, st_cell, spine_cell in rows
                         for kind, cell in (("ST", st_cell),
                                            ("SPINE", spine_cell))])},
    )


@register("fig6-space")
def run_space(scale=None, genomes=None):
    """Companion: the measured index sizes behind the OOM boundary."""
    scale = effective_scale(MEMORY_SCALE, scale)
    genomes = genomes or GENOMES
    rows = []
    for name in genomes:
        text = genome(name, scale)
        n = len(text)
        index = SpineIndex(text)
        spine_bpc = PackedSpineIndex.from_index(index).measured_bytes()[
            "bytes_per_char"]
        rows.append((name, n, round(spine_bpc, 2),
                     SUFFIX_TREE_BYTES_PER_CHAR["standard"],
                     round(100 * (1 - spine_bpc
                                  / SUFFIX_TREE_BYTES_PER_CHAR["standard"]),
                           1)))
    return ExperimentResult(
        experiment_id="fig6-space",
        title="Measured index size (bytes/char) behind Figure 6",
        headers=["Genome", "Length", "SPINE B/char", "ST B/char",
                 "SPINE smaller by %"],
        rows=rows,
        paper_rows=[("SPINE vs ST size", "about one third smaller")],
        paper_headers=["Finding", "Paper"],
        notes=f"scale={scale}.",
    )
