"""CLI: ``python -m repro.experiments [ids...] [--csv DIR]``.

With no arguments, lists available experiments. ``all`` runs the whole
evaluation (the EXPERIMENTS.md generator uses this path); ``--csv DIR``
additionally writes each regenerated table to ``DIR/<id>.csv``.
"""

from __future__ import annotations

import os
import sys

from repro.experiments import experiment_ids, run_experiment


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    csv_dir = None
    if "--csv" in argv:
        at = argv.index("--csv")
        try:
            csv_dir = argv[at + 1]
        except IndexError:
            print("error: --csv needs a directory", file=sys.stderr)
            return 2
        del argv[at:at + 2]
        os.makedirs(csv_dir, exist_ok=True)
    ids = experiment_ids()
    if not argv:
        print("usage: python -m repro.experiments <id|all> [...] "
              "[--csv DIR]")
        print("available experiments:")
        for experiment_id in ids:
            print(f"  {experiment_id}")
        return 0
    targets = ids if argv == ["all"] else argv
    for experiment_id in targets:
        result = run_experiment(experiment_id)
        print(result.format())
        print()
        if csv_dir is not None:
            path = os.path.join(csv_dir, f"{experiment_id}.csv")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(result.csv())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
