"""Table 7: on-disk substring matching, SPINE vs the suffix tree.

Both disk-resident indexes are built, the buffer pool is cleared (cold
cache), and the Section 4 matching operation streams the query; only
the matching-phase I/O is charged. The paper reports ~50 % speedups for
SPINE across all genome pairs.

Buffer sizing: the paper ran with a fixed RAM budget comparable to the
*larger* (suffix tree) index, i.e. a regime where SPINE's ~3x smaller
footprint is substantially cacheable while ST's is not. We mirror that
regime scale-independently by giving both indexes a buffer equal to
half of SPINE's page working set (identical absolute budget for both
competitors; ``buffer_pages`` overrides it).
"""

from __future__ import annotations

from repro.alphabet import dna_alphabet
from repro.disk import DiskSpineIndex, DiskSuffixTree
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    DISK_SCALE, TABLE7_PAIRS, effective_scale, genome_pair)
from repro.storage import DiskModel

PAPER_ROWS = [
    ("CEL", "ECO", 0.98, 0.47, "52.1%"),
    ("HC21", "ECO", 0.97, 0.48, "49.8%"),
    ("HC21", "CEL", 4.30, 2.02, "52.8%"),
    ("HC19", "HC21", 7.92, 3.87, "51.1%"),
]

#: Default: computed per pair as half of SPINE's working set.
BUFFER_PAGES = None
MIN_LENGTH = 12


def _matching_cost(index, query, model, min_length):
    """Cold-cache matching I/O cost in modeled seconds."""
    index.flush()
    index.pool.clear()
    before = model.cost_seconds(index.pagefile.metrics)
    matches, _ = index.maximal_matches(query, min_length=min_length)
    after = model.cost_seconds(index.pagefile.metrics)
    return after - before, len(matches)


@register("table7")
def run(scale=None, pairs=None, buffer_pages=BUFFER_PAGES,
        min_length=MIN_LENGTH):
    scale = effective_scale(DISK_SCALE, scale)
    pairs = pairs or TABLE7_PAIRS
    model = DiskModel()
    rows = []
    speedups = []
    buffers_used = []
    for data_name, query_name in pairs:
        data, query = genome_pair(data_name, query_name, scale)
        if buffer_pages is None:
            probe = DiskSpineIndex(alphabet=dna_alphabet(),
                                   buffer_pages=64)
            probe.extend(data)
            pair_buffer = max(64, probe.pagefile.page_count // 2)
            probe.close()
        else:
            pair_buffer = buffer_pages
        buffers_used.append(pair_buffer)
        spine = DiskSpineIndex(alphabet=dna_alphabet(),
                               buffer_pages=pair_buffer,
                               sync_writes=True)
        spine.extend(data)
        spine_secs, n_spine = _matching_cost(spine, query, model,
                                             min_length)
        st = DiskSuffixTree(dna_alphabet(), buffer_pages=pair_buffer,
                            sync_writes=True)
        st.extend(data)
        st.finalize()
        st_secs, n_st = _matching_cost(st, query, model, min_length)
        if n_st != n_spine:
            raise AssertionError(
                f"match counts diverge on ({data_name}, {query_name}): "
                f"{n_st} vs {n_spine}")
        speedup = 100.0 * (st_secs - spine_secs) / st_secs \
            if st_secs else 0.0
        speedups.append(speedup)
        rows.append((data_name, query_name, round(st_secs, 2),
                     round(spine_secs, 2), f"{speedup:.1f}%"))
        spine.close()
        st.close()
    mean = sum(speedups) / len(speedups) if speedups else 0.0
    return ExperimentResult(
        experiment_id="table7",
        title="Substring matching on disk (modeled seconds, cold cache)",
        headers=["Data seq", "Query seq", "ST", "SPINE", "Speedup"],
        rows=rows,
        paper_headers=["Data seq", "Query seq", "MUMmer (h)",
                       "SPINE (h)", "Speedup"],
        paper_rows=PAPER_ROWS,
        notes=(f"scale={scale}, buffers={buffers_used} pages (half of "
               "SPINE's working set per pair, same budget for both), "
               f"min_length={min_length}. Shape criterion: SPINE faster "
               f"on every pair; mean speedup {mean:.1f}% (paper ~51%)."),
        data={"mean_speedup": mean},
    )
