"""Per-experiment workload definitions and scaling.

The global knob is ``scale`` — synthetic characters per paper-Mbp (see
:mod:`repro.sequences.corpus`). Experiments pick defaults that keep the
whole benchmark suite runnable in minutes of pure Python; the
``REPRO_SCALE_FACTOR`` environment variable multiplies every default
(e.g. ``REPRO_SCALE_FACTOR=4`` for a longer, higher-fidelity run).

The paper's memory-budget narrative (ST cannot index HC19 in 1 GB) is
reproduced by scaling the 1 GB budget with the corpus: the budget in
bytes is ``1 GiB * scale / 1e6``, i.e. exactly proportional to how much
the strings were shrunk.
"""

from __future__ import annotations

import os

from repro.sequences import load_corpus_sequence

#: Default chars-per-Mbp for the in-memory experiments.
MEMORY_SCALE = 17_000
#: Default for the streaming-match experiments (two big strings each).
MATCH_SCALE = 8_000
#: Default for the disk experiments (every access is paged).
DISK_SCALE = 1_500

#: Genome pairs of Table 5 (data sequence, query sequence).
TABLE5_PAIRS = [("ECO", "CEL"), ("CEL", "HC21"), ("HC21", "CEL"),
                ("HC21", "HC19"), ("HC19", "HC21")]
#: Genome pairs of Table 6.
TABLE6_PAIRS = [("CEL", "ECO"), ("HC21", "ECO"), ("HC21", "CEL")]
#: Genome pairs of Table 7.
TABLE7_PAIRS = [("CEL", "ECO"), ("HC21", "ECO"), ("HC21", "CEL"),
                ("HC19", "HC21")]
#: Genomes of Figures 6/7/8 and Tables 3/4.
GENOMES = ["ECO", "CEL", "HC21", "HC19"]
DISK_GENOMES = ["ECO", "CEL", "HC21"]
PROTEOMES = ["ECO-R", "YEAST-R", "DROS-R"]

#: Matching threshold of the Section 4 example, kept at the paper's
#: value (maximal matches shorter than this are not reported).
MATCH_THRESHOLD = 6

PAPER_RAM_BYTES = 1 << 30  # the paper machine's 1 GB


def scale_factor():
    """Multiplier from the environment (default 1)."""
    try:
        return float(os.environ.get("REPRO_SCALE_FACTOR", "1"))
    except ValueError:
        return 1.0


def effective_scale(default, scale=None):
    """Resolve an experiment's scale: explicit arg beats env beats
    default."""
    if scale is not None:
        return int(scale)
    return max(1, int(default * scale_factor()))


def memory_budget_bytes(scale):
    """The paper's 1 GB RAM budget, shrunk proportionally."""
    return PAPER_RAM_BYTES * scale / 1_000_000.0


def genome(name, scale):
    """Materialize a corpus sequence at ``scale``."""
    return load_corpus_sequence(name, scale=scale)


#: Fraction of the query covered by homologous (mutated-copy) segments
#: in cross-sequence workloads.
HOMOLOGY_SHARE = 0.15
#: Per-character substitution rate inside a homologous segment
#: (~80-85 % identity, typical of conserved coding regions).
HOMOLOGY_MUTATION = 0.15

_PAIR_CACHE = {}


def genome_pair(data_name, query_name, scale,
                share=HOMOLOGY_SHARE, mutation=HOMOLOGY_MUTATION):
    """A (data, query) pair with planted cross-sequence homology.

    The paper streams real genomes against each other; related organisms
    share conserved segments, and those deep matches are what exercise
    the suffix-shortening machinery (Tables 5-7). Independent synthetic
    genomes share only chance ~log-length matches, so we splice mutated
    copies of data segments into the query: ``share`` of the query
    length becomes homologous segments at ``1 - mutation`` identity.
    Deterministic per (names, scale).
    """
    import numpy as np

    key = (data_name, query_name, scale, share, mutation)
    cached = _PAIR_CACHE.get(key)
    if cached is not None:
        return cached
    data = genome(data_name, scale)
    query = list(genome(query_name, scale))
    rng = np.random.default_rng(
        abs(hash((data_name, query_name, scale))) % (2 ** 31))
    alphabet = sorted(set(data))
    target = int(len(query) * share)
    planted = 0
    while planted < target:
        seg_len = int(rng.integers(40, 400))
        seg_len = min(seg_len, target - planted, len(data) - 1,
                      len(query) - 1)
        if seg_len <= 0:
            break
        src = int(rng.integers(0, len(data) - seg_len))
        dst = int(rng.integers(0, len(query) - seg_len))
        segment = list(data[src:src + seg_len])
        hits = rng.random(seg_len) < mutation
        for i in range(seg_len):
            if hits[i]:
                segment[i] = alphabet[int(rng.integers(0, len(alphabet)))]
        query[dst:dst + seg_len] = segment
        planted += seg_len
    result = (data, "".join(query))
    _PAIR_CACHE[key] = result
    return result
