"""Table 5: in-memory substring matching times (SPINE vs ST).

The operation is Section 4's: all maximal matching substrings between a
data sequence (indexed) and a query sequence, repetitions included,
above a length threshold. The paper reports SPINE ~30 % faster thanks
to its set-based suffix processing; the dash in the paper's (HC19,
HC21) row is the ST index exceeding memory, reproduced here through the
scaled budget.
"""

from __future__ import annotations

import time

from repro.core import SpineIndex
from repro.core.matching import maximal_matches
from repro.experiments import register
from repro.experiments.figure6 import st_estimated_build_bytes
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    MATCH_SCALE, TABLE5_PAIRS, effective_scale, genome_pair,
    memory_budget_bytes)
from repro.suffixtree import SuffixTree, st_maximal_matches

PAPER_ROWS = [
    ("ECO", "CEL", 20, 16), ("CEL", "HC21", 45, 31),
    ("HC21", "CEL", 26, 17), ("HC21", "HC19", 83, 54),
    ("HC19", "HC21", "-", 30),
]

#: Minimum reported match length; chosen so chance matches between the
#: independent pseudo-genomes stay sparse (the paper's real genomes have
#: homology; the threshold does not affect the timing comparison).
MIN_LENGTH = 12


@register("table5")
def run(scale=None, pairs=None, min_length=MIN_LENGTH):
    scale = effective_scale(MATCH_SCALE, scale)
    pairs = pairs or TABLE5_PAIRS
    budget = memory_budget_bytes(scale)
    rows = []
    ratios = []
    for data_name, query_name in pairs:
        data, query = genome_pair(data_name, query_name, scale)
        index = SpineIndex(data)
        t0 = time.perf_counter()
        spine_matches, _ = maximal_matches(index, query,
                                           min_length=min_length)
        spine_secs = time.perf_counter() - t0
        if st_estimated_build_bytes(len(data)) > budget:
            st_cell = "-"
            st_secs = None
        else:
            tree = SuffixTree(data).finalize()
            t0 = time.perf_counter()
            st_matches, _ = st_maximal_matches(tree, query,
                                               min_length=min_length)
            st_secs = time.perf_counter() - t0
            st_cell = round(st_secs, 3)
            if len(st_matches) != len(spine_matches):
                st_cell = f"{st_cell} (MISMATCH)"
            ratios.append(st_secs / spine_secs if spine_secs else 0.0)
            del tree
        rows.append((data_name, query_name, st_cell,
                     round(spine_secs, 3), len(spine_matches)))
    mean_ratio = sum(ratios) / len(ratios) if ratios else 0.0
    return ExperimentResult(
        experiment_id="table5",
        title="Substring matching times, in memory (seconds)",
        headers=["Data seq", "Query seq", "ST", "SPINE", "Matches"],
        rows=rows,
        paper_headers=["Data seq", "Query seq", "ST (s)", "SPINE (s)"],
        paper_rows=PAPER_ROWS,
        notes=(f"scale={scale}, min_length={min_length}. Shape "
               "criterion: SPINE faster than ST on every pair "
               f"(mean ST/SPINE ratio {mean_ratio:.2f}; paper ~1.4); "
               "the longest data sequence exceeds the ST memory budget "
               "(dash row)."),
        data={"mean_ratio": mean_ratio},
    )
