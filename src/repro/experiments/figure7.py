"""Figure 7: on-disk construction times (synchronous writes).

Both indexes are built page-resident through the same buffer pool with
``O_SYNC``-style write accounting; counted I/Os become modeled hours
under the documented :class:`~repro.storage.disk.DiskModel`. The paper
finds SPINE builds in roughly *half* the ST time — more than its ~30 %
size advantage alone explains, the rest being the append-only Link
Table's locality.
"""

from __future__ import annotations

from repro.alphabet import dna_alphabet
from repro.disk import DiskSpineIndex, DiskSuffixTree
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    DISK_GENOMES, DISK_SCALE, effective_scale, genome)
from repro.storage import DiskModel

#: Default: computed per genome as half of SPINE's final working set
#: (same absolute budget for both competitors) — the paper's regime,
#: where the smaller index is substantially cacheable and the larger
#: one is not.
BUFFER_PAGES = None


@register("fig7")
def run(scale=None, genomes=None, buffer_pages=BUFFER_PAGES):
    scale = effective_scale(DISK_SCALE, scale)
    genomes = genomes or DISK_GENOMES
    model = DiskModel()
    rows = []
    ratios = []
    buffers_used = []
    for name in genomes:
        text = genome(name, scale)
        if buffer_pages is None:
            probe = DiskSpineIndex(alphabet=dna_alphabet(),
                                   buffer_pages=64)
            probe.extend(text)
            pair_buffer = max(16, probe.pagefile.page_count // 2)
            probe.close()
        else:
            pair_buffer = buffer_pages
        buffers_used.append(pair_buffer)
        spine = DiskSpineIndex(alphabet=dna_alphabet(),
                               buffer_pages=pair_buffer,
                               sync_writes=True)
        spine.extend(text)
        spine.flush()
        spine_secs = model.cost_seconds(spine.pagefile.metrics)
        spine_io = spine.io_snapshot()
        st = DiskSuffixTree(dna_alphabet(), buffer_pages=pair_buffer,
                            sync_writes=True)
        st.extend(text)
        st.flush()
        st_secs = model.cost_seconds(st.pagefile.metrics)
        st_io = st.io_snapshot()
        ratio = st_secs / spine_secs if spine_secs else 0.0
        ratios.append(ratio)
        rows.append((name, len(text),
                     round(st_secs / 3600, 4), round(spine_secs / 3600, 4),
                     st_io["reads"] + st_io["writes"],
                     spine_io["reads"] + spine_io["writes"],
                     round(ratio, 2)))
        spine.close()
        st.close()
    mean_ratio = sum(ratios) / len(ratios) if ratios else 0.0
    return ExperimentResult(
        experiment_id="fig7",
        title="Index construction on disk (modeled hours + page I/Os)",
        headers=["Genome", "Length", "ST (h)", "SPINE (h)", "ST I/Os",
                 "SPINE I/Os", "ST/SPINE"],
        rows=rows,
        paper_headers=["Finding", "Paper"],
        paper_rows=[
            ("relative time", "SPINE about half of ST"),
            ("attribution", "~30% from smaller nodes, ~20% from "
             "better locality"),
        ],
        notes=(f"scale={scale}, buffers={buffers_used} pages (half of "
               "SPINE's final working set, same budget for both), "
               "synchronous writes, seek 9 ms / 40 MB/s model. Shape "
               f"criterion: ST/SPINE >= 1.3 on every genome; mean "
               f"{mean_ratio:.2f} (paper ~2)."),
        data={"mean_ratio": mean_ratio,
              "chart": ("Disk construction page I/Os", "",
                        [(f"{row[0]} {kind}", value)
                         for row in rows
                         for kind, value in (("ST", row[4]),
                                             ("SPINE", row[5]))])},
    )
