"""Table 3: maximum numeric label values stay far below the two-byte
limit, justifying the short label fields of Section 5.1."""

from __future__ import annotations

from repro.core import SpineIndex, collect_statistics
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    GENOMES, MEMORY_SCALE, effective_scale, genome)

PAPER_VALUES = {"ECO": 1785, "CEL": 8187, "HC21": 21844, "HC19": 12371}


@register("table3")
def run(scale=None, genomes=None):
    scale = effective_scale(MEMORY_SCALE, scale)
    genomes = genomes or GENOMES
    rows = []
    fits = True
    for name in genomes:
        text = genome(name, scale)
        stats = collect_statistics(SpineIndex(text))
        rows.append((name, len(text), stats.max_label, stats.max_lel,
                     stats.max_pt, stats.max_prt))
        fits = fits and stats.labels_fit_two_bytes()
    return ExperimentResult(
        experiment_id="table3",
        title="Maximum label values (PT/LEL/PRT)",
        headers=["Genome", "Length", "Max label", "Max LEL", "Max PT",
                 "Max PRT"],
        rows=rows,
        paper_headers=["Genome", "Max value"],
        paper_rows=sorted(PAPER_VALUES.items()),
        notes=(f"scale={scale} chars/Mbp. Shape criterion: labels are "
               "orders of magnitude below the string length and fit two "
               f"bytes -> {'HOLDS' if fits else 'VIOLATED'}."),
        data={"two_byte_fit": fits},
    )
