"""Section 5.2: SPINE over protein strings.

The paper reports that with the 20-letter residue alphabet the label
values shrink further, multi-rib nodes decay steeply, under 30 % of
nodes carry downstream edges, and construction stays linear in string
length. No numbered artifact exists; this experiment regenerates the
quantities the prose quotes.
"""

from __future__ import annotations

import time

from repro.core import SpineIndex, collect_statistics
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    MEMORY_SCALE, PROTEOMES, effective_scale, genome)


@register("proteins")
def run(scale=None, proteomes=None):
    scale = effective_scale(MEMORY_SCALE, scale)
    proteomes = proteomes or PROTEOMES
    rows = []
    per_char = []
    shape_ok = True
    for name in proteomes:
        text = genome(name, scale)
        t0 = time.perf_counter()
        index = SpineIndex(text)
        secs = time.perf_counter() - t0
        stats = collect_statistics(index)
        pct = stats.fanout_percentages(max_fanout=3)
        rows.append((name, len(text), stats.max_label,
                     round(stats.downstream_percentage, 1),
                     round(pct.get(1, 0.0), 1), round(pct.get(2, 0.0), 1),
                     round(pct.get(3, 0.0), 1),
                     round(secs * 1e6 / len(text), 2)))
        per_char.append(secs / len(text))
        shape_ok = shape_ok and stats.downstream_percentage < 40.0 \
            and pct.get(1, 0) >= pct.get(2, 0) >= pct.get(3, 0)
    spread = (max(per_char) / min(per_char)) if per_char else 0.0
    return ExperimentResult(
        experiment_id="proteins",
        title="SPINE on proteomes (Section 5.2 quantities)",
        headers=["Proteome", "Length", "Max label", "Downstream %",
                 "1-rib %", "2-rib %", "3-rib %", "us/char"],
        rows=rows,
        paper_headers=["Finding", "Paper"],
        paper_rows=[
            ("label values", "even smaller than DNA"),
            ("nodes with ribs/extribs", "< 30%"),
            ("multi-rib decay", "steep"),
            ("construction", "linear in string length"),
        ],
        notes=(f"scale={scale}. Shape criteria: downstream minority & "
               f"decaying fanout ({'HOLDS' if shape_ok else 'VIOLATED'});"
               f" per-char build time spread across lengths "
               f"{spread:.2f}x (linearity ~ 1x)."),
        data={"shape_ok": shape_ok, "per_char_spread": spread},
    )
