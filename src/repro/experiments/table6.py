"""Table 6: number of suffix checks during matching (SPINE vs ST).

SPINE's link chain processes early-terminating suffixes as a *set*
(one check per chain node), while the suffix tree's suffix links drop a
single character at a time (one check per suffix). The paper reports
ST checking ~1.6-1.7x as many; the counters here instrument exactly
those checks on identical inputs.
"""

from __future__ import annotations

from repro.core import SpineIndex
from repro.core.matching import matching_statistics
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    MATCH_SCALE, TABLE6_PAIRS, effective_scale, genome_pair)
from repro.suffixtree import SuffixTree, st_matching_statistics

PAPER_ROWS = [
    ("CEL", "ECO", 3515, 2119),
    ("HC21", "ECO", 3514, 2163),
    ("HC21", "CEL", 15077, 8701),
]


@register("table6")
def run(scale=None, pairs=None):
    scale = effective_scale(MATCH_SCALE, scale)
    pairs = pairs or TABLE6_PAIRS
    rows = []
    ratios = []
    for data_name, query_name in pairs:
        data, query = genome_pair(data_name, query_name, scale)
        index = SpineIndex(data)
        spine = matching_statistics(index, query)
        tree = SuffixTree(data)
        st = st_matching_statistics(tree, query)
        if st.lengths != spine.lengths:
            raise AssertionError(
                f"matching statistics disagree on ({data_name}, "
                f"{query_name})")
        # The paper counts *suffixes checked after a mismatch*: every
        # query character costs both indexes one extension attempt, so
        # the per-char floor is subtracted to leave only the
        # suffix-shortening work the two structures do differently.
        m = len(query)
        st_checks = st.checks - m
        spine_checks = spine.checks - m
        ratio = st_checks / spine_checks if spine_checks else 0.0
        ratios.append(ratio)
        rows.append((data_name, query_name,
                     round(st_checks / 1000, 1),
                     round(spine_checks / 1000, 1), round(ratio, 2)))
        del tree
    mean_ratio = sum(ratios) / len(ratios) if ratios else 0.0
    return ExperimentResult(
        experiment_id="table6",
        title="Number of nodes checked during matching (thousands)",
        headers=["Data seq", "Query seq", "ST (k)", "SPINE (k)",
                 "ST/SPINE"],
        rows=rows,
        paper_headers=["Data seq", "Query seq", "ST (k)", "SPINE (k)"],
        paper_rows=PAPER_ROWS,
        notes=(f"scale={scale}. Shape criterion: ST checks more "
               f"suffixes on every pair; mean ratio {mean_ratio:.2f} "
               "(paper: 1.63-1.73). Matching statistics were verified "
               "identical between the two indexes before counting."),
        data={"mean_ratio": mean_ratio},
    )
