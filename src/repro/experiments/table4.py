"""Table 4: downstream-edge (rib/extrib) fanout distribution — only
~30-35 % of nodes carry any downstream edge, and the percentage decays
with fanout, motivating the LT/RT split."""

from __future__ import annotations

from repro.core import SpineIndex, collect_statistics
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    GENOMES, MEMORY_SCALE, effective_scale, genome)

PAPER_ROWS = [
    ("ECO", 15, 9, 6, 4, 33),
    ("CEL", 15, 8, 6, 4, 33),
    ("HC21", 14, 8, 6, 4, 32),
    ("HC19", 13, 7, 5, 3, 28),
]


@register("table4")
def run(scale=None, genomes=None):
    scale = effective_scale(MEMORY_SCALE, scale)
    genomes = genomes or GENOMES
    rows = []
    shape_ok = True
    for name in genomes:
        stats = collect_statistics(SpineIndex(genome(name, scale)))
        pct = stats.fanout_percentages(max_fanout=4)
        total = stats.downstream_percentage
        rows.append((name, round(pct.get(1, 0.0), 1),
                     round(pct.get(2, 0.0), 1), round(pct.get(3, 0.0), 1),
                     round(pct.get(4, 0.0), 1), round(total, 1)))
        decays = pct.get(1, 0) >= pct.get(2, 0) >= pct.get(3, 0) \
            >= pct.get(4, 0)
        shape_ok = shape_ok and decays and total < 45.0
    return ExperimentResult(
        experiment_id="table4",
        title="Rib distribution across nodes (% of nodes by fanout)",
        headers=["Genome", "1", "2", "3", "4", "Total %"],
        rows=rows,
        paper_headers=["Genome", "1", "2", "3", "4", "Total %"],
        paper_rows=PAPER_ROWS,
        notes=(f"scale={scale}. Shape criterion: decaying fanout "
               "percentages and a minority of nodes with downstream "
               f"edges -> {'HOLDS' if shape_ok else 'VIOLATED'}."),
        data={"shape_ok": shape_ok},
    )
