"""Result containers and plain-text table rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field


def format_table(headers, rows, title=None):
    """Render rows (sequences of cells) as an aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(c) for c in row])
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_bar_chart(series, width=48, title=None, unit=""):
    """Horizontal ASCII bar chart for figure-style results.

    ``series`` is a list of ``(label, value)`` pairs; bars scale to the
    maximum value. Non-numeric values (e.g. "OOM") render as flags.
    """
    numeric = [v for _, v in series if isinstance(v, (int, float))]
    peak = max(numeric) if numeric else 1.0
    label_width = max((len(str(label)) for label, _ in series),
                      default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in series:
        if isinstance(value, (int, float)):
            filled = int(round(width * value / peak)) if peak else 0
            bar = "#" * max(filled, 1 if value > 0 else 0)
            rendered = _fmt(value) + unit
        else:
            bar = "!" * (width // 3)
            rendered = str(value)
        lines.append(f"{str(label).ljust(label_width)} |{bar.ljust(width)}"
                     f"| {rendered}")
    return "\n".join(lines)


def to_csv(headers, rows):
    """Render a result table as CSV text (RFC-4180-enough)."""
    def cell(value):
        text = _fmt(value)
        if any(ch in text for ch in ",\"\n"):
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    for row in rows:
        lines.append(",".join(cell(c) for c in row))
    return "\n".join(lines) + "\n"


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes
    ----------
    experiment_id:
        The registry id (``table3``, ``fig7``, ...).
    title:
        Human-readable description echoing the paper artifact.
    headers / rows:
        The regenerated table.
    paper_headers / paper_rows:
        The values the paper reports, for side-by-side reading (absolute
        agreement is not expected — see EXPERIMENTS.md — the *shape* is).
    notes:
        Scaling/substitution remarks for this run.
    data:
        Free-form machine-readable extras (used by the benchmarks and
        EXPERIMENTS.md generation).
    """

    experiment_id: str
    title: str
    headers: list
    rows: list
    paper_headers: list = field(default_factory=list)
    paper_rows: list = field(default_factory=list)
    notes: str = ""
    data: dict = field(default_factory=dict)

    def format(self):
        """Render the result (table, chart, paper rows, notes)."""
        parts = [format_table(self.headers, self.rows,
                              title=f"[{self.experiment_id}] {self.title}")]
        chart = self.chart()
        if chart:
            parts.append("")
            parts.append(chart)
        if self.paper_rows:
            parts.append("")
            parts.append(format_table(
                self.paper_headers or self.headers, self.paper_rows,
                title="Paper reports:"))
        if self.notes:
            parts.append("")
            parts.append(f"Notes: {self.notes}")
        return "\n".join(parts)

    def chart(self):
        """ASCII bar chart for figure-type experiments; the experiment
        supplies its series as ``data["chart"]`` — a ``(title, unit,
        [(label, value), ...])`` triple. Empty string otherwise."""
        spec = self.data.get("chart")
        if not spec:
            return ""
        title, unit, series = spec
        return format_bar_chart(series, title=title, unit=unit)

    def csv(self):
        """The regenerated table as CSV text."""
        return to_csv(self.headers, self.rows)
