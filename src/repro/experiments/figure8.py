"""Figure 8: distribution of link destinations over the backbone.

The paper observes that most links point to upstream (early) nodes and
that the per-node link count decays monotonically down the backbone —
the basis for the PinTop buffering strategy. We histogram link
destinations into equal-width backbone bins and test the decay shape.
"""

from __future__ import annotations

from repro.core import SpineIndex, collect_statistics
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    MEMORY_SCALE, effective_scale, genome)

GENOMES = ["ECO", "CEL", "HC21"]
BINS = 12


@register("fig8")
def run(scale=None, genomes=None, bins=BINS):
    scale = effective_scale(MEMORY_SCALE, scale)
    genomes = genomes or GENOMES
    rows = []
    shape_ok = True
    series = {}
    for name in genomes:
        stats = collect_statistics(SpineIndex(genome(name, scale)),
                                   link_bins=bins)
        pct = stats.link_destination_bins
        series[name] = pct
        top_share = sum(pct[: max(1, bins // 5)])
        mostly_decreasing = sum(
            1 for i in range(1, len(pct)) if pct[i] <= pct[i - 1] + 1.0
        ) >= int(0.7 * (len(pct) - 1))
        shape_ok = shape_ok and pct[0] == max(pct) \
            and top_share > 100.0 / bins * 2 and mostly_decreasing
        rows.append((name, round(pct[0], 1), round(top_share, 1),
                     " ".join(f"{p:.0f}" for p in pct)))
    return ExperimentResult(
        experiment_id="fig8",
        title=f"Link destination distribution ({bins} backbone bins, "
              "% of links)",
        headers=["Genome", "First bin %", "Top-20% share", "All bins"],
        rows=rows,
        paper_headers=["Finding", "Paper"],
        paper_rows=[
            ("mass location", "most links point to upper backbone"),
            ("trend", "monotonically decreasing down the backbone"),
            ("implication", "buffer the top of the Link Table"),
        ],
        notes=(f"scale={scale}. Shape criterion: first bin is the "
               "maximum, the top fifth holds well above its uniform "
               "share, and the series is (near-)monotone decreasing -> "
               f"{'HOLDS' if shape_ok else 'VIOLATED'}."),
        data={"series": series, "shape_ok": shape_ok,
              "chart": ("Link destinations, first genome "
                        f"({genomes[0]}), % per bin", "%",
                        [(f"bin {i}", round(p, 1))
                         for i, p in enumerate(series[genomes[0]])])},
    )
