"""One-shot reproduction health check.

``python -m repro.experiments summary`` runs every paper artifact at
reduced scales and reports one verdict line per experiment — the
machine-checkable version of EXPERIMENTS.md's claim table. A violated
shape reads VIOLATED in the output and flips the ``all_hold`` flag the
benchmark asserts.
"""

from __future__ import annotations

from repro.experiments import register, run_experiment
from repro.experiments.report import ExperimentResult

#: (experiment id, kwargs, predicate over result) — the shape checks.
CHECKS = [
    ("table2", {},
     lambda r: all(m[3] < 12.0 for m in r.data["measured"])),
    ("table3", {}, lambda r: r.data["two_byte_fit"]),
    ("table4", {}, lambda r: r.data["shape_ok"]),
    ("fig6", {}, lambda r: r.data["spine_completes"]
     and r.data["st_oom"]),
    ("table5", {}, lambda r: r.data["mean_ratio"] > 1.0),
    ("table6", {}, lambda r: 1.3 < r.data["mean_ratio"] < 2.5),
    ("fig7", {}, lambda r: r.data["mean_ratio"] > 1.3),
    ("fig8", {}, lambda r: r.data["shape_ok"]),
    ("table7", {}, lambda r: r.data["mean_speedup"] > 10.0),
    ("proteins", {}, lambda r: r.data["shape_ok"]),
    ("space", {}, lambda r: r.data["ordering_ok"]),
    ("construction-effort", {},
     lambda r: r.data["bounded"] and r.data["spread"] < 2.0),
    ("ablation-st-layout", {}, lambda r: r.data["beats_creation"]),
]

#: Reduced scales so the whole sweep stays minutes-fast.
SUMMARY_SCALES = {
    "table2": 4_000, "table3": 4_000, "table4": 4_000, "fig6": 4_000,
    "fig8": 4_000, "proteins": 4_000, "space": 4_000,
    "construction-effort": 4_000,
    "table5": 2_000, "table6": 2_000,
    "fig7": 400, "table7": 400, "ablation-st-layout": 400,
}


@register("summary")
def run(scale=None):
    rows = []
    all_hold = True
    for experiment_id, kwargs, predicate in CHECKS:
        effective = scale if scale is not None \
            else SUMMARY_SCALES[experiment_id]
        result = run_experiment(experiment_id, scale=effective,
                                **kwargs)
        holds = bool(predicate(result))
        all_hold = all_hold and holds
        rows.append((experiment_id, result.title[:48],
                     "HOLDS" if holds else "VIOLATED"))
    return ExperimentResult(
        experiment_id="summary",
        title="Reproduction health check (all paper artifacts)",
        headers=["Experiment", "Artifact", "Shape"],
        rows=rows,
        notes=("Each row re-runs the experiment at a reduced scale and "
               "evaluates its shape criterion. Overall: "
               f"{'ALL HOLD' if all_hold else 'SOME VIOLATED'}."),
        data={"all_hold": all_hold},
    )
