"""Table 2 + Section 5.1: node-content space model and the optimized
layout's measured bytes per character."""

from __future__ import annotations

from repro.core import SpineIndex, collect_statistics
from repro.core.layout import (
    layout_report, naive_bytes_per_node, naive_node_fields)
from repro.core.packed import PackedSpineIndex
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    GENOMES, MEMORY_SCALE, effective_scale, genome)


@register("table2")
def run(scale=None, genomes=None):
    """Regenerate Table 2 (naive field inventory) and the measured
    optimized bytes/char for each genome (the "< 12 bytes" claim)."""
    scale = effective_scale(MEMORY_SCALE, scale)
    genomes = genomes or GENOMES
    rows = [(field.name, field.bytes_each, field.count, field.total)
            for field in naive_node_fields(alphabet_size=4)]
    rows.append(("TOTAL (naive, worst case)", "", "",
                 naive_bytes_per_node(4)))
    measured = []
    for name in genomes:
        text = genome(name, scale)
        index = SpineIndex(text)
        stats = collect_statistics(index)
        report = layout_report(stats)
        packed = PackedSpineIndex.from_index(index).measured_bytes()
        measured.append((name, len(text),
                         round(report["optimized_bytes_per_char"], 2),
                         round(packed["bytes_per_char"], 2)))
    result = ExperimentResult(
        experiment_id="table2",
        title="Index node content and optimized layout size",
        headers=["Field", "Bytes", "Count", "Total"],
        rows=rows,
        paper_headers=["Claim", "Value"],
        paper_rows=[("naive worst-case node size", "48.25 bytes"),
                    ("optimized layout", "< 12 bytes per indexed char"),
                    ("standard suffix tree", "17 bytes per indexed char")],
        notes=f"scale={scale} chars/Mbp; measured optimized layout per "
              "genome (model, packed): "
              + "; ".join(f"{n}({length}): {a} / {b} B/char"
                          for n, length, a, b in measured),
        data={"measured": measured},
    )
    return result
