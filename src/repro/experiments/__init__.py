"""Experiment harness: one module per paper table/figure.

Every evaluation artifact in the paper maps to a module here (see
DESIGN.md section 4). Each module exposes ``run(scale=None, ...) ->
ExperimentResult``; the CLI (``python -m repro.experiments <id>``)
prints the paper-style table plus the paper's expected numbers for
side-by-side comparison, and the ``benchmarks/`` tree times the same
entry points under pytest-benchmark.
"""

from repro.experiments.report import ExperimentResult, format_table

_REGISTRY = {}


def register(experiment_id):
    """Class/function decorator adding a ``run`` callable to the CLI."""
    def wrap(fn):
        _REGISTRY[experiment_id] = fn
        return fn
    return wrap


def experiment_ids():
    """All registered experiment ids (importing the modules lazily)."""
    _load_all()
    return sorted(_REGISTRY)


def run_experiment(experiment_id, **kwargs):
    """Run one experiment by id; returns its :class:`ExperimentResult`."""
    _load_all()
    try:
        fn = _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}") from None
    return fn(**kwargs)


def _load_all():
    from repro.experiments import (  # noqa: F401
        ablation_buffering,
        ablation_layout_order,
        construction_effort,
        figure6,
        figure7,
        figure8,
        proteins,
        space_comparison,
        summary,
        table2,
        table3,
        table4,
        table5,
        table6,
        table7,
    )


__all__ = [
    "ExperimentResult",
    "format_table",
    "register",
    "experiment_ids",
    "run_experiment",
]
