"""Ablation: buffer replacement policies for the disk-resident SPINE.

Section 6.2 proposes the PinTop strategy ("retain as much as possible
of the top part of the Link Table in memory") off the back of the
Figure 8 locality observation. This ablation sweeps policies and buffer
sizes over a construction-plus-search workload and reports modeled
time, so the value (or redundancy) of PinTop versus plain LRU/CLOCK is
measured rather than asserted.
"""

from __future__ import annotations

from repro.alphabet import dna_alphabet
from repro.disk import DiskSpineIndex
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    DISK_SCALE, effective_scale, genome)
from repro.storage import DiskModel

POLICIES = ["lru", "clock", "pintop"]
BUFFER_SIZES = [16, 48, 128]
GENOME = "CEL"
MIN_LENGTH = 12


@register("ablation-buffer")
def run(scale=None, genome_name=GENOME, policies=None, buffer_sizes=None):
    scale = effective_scale(DISK_SCALE, scale)
    policies = policies or POLICIES
    buffer_sizes = buffer_sizes or BUFFER_SIZES
    data = genome(genome_name, scale)
    query = genome("ECO", scale)
    model = DiskModel()
    rows = []
    by_policy = {}
    for pages in buffer_sizes:
        for policy in policies:
            index = DiskSpineIndex(alphabet=dna_alphabet(),
                                   buffer_pages=pages, policy=policy,
                                   sync_writes=True)
            index.extend(data)
            index.flush()
            build_secs = model.cost_seconds(index.pagefile.metrics)
            index.pool.clear()
            before = model.cost_seconds(index.pagefile.metrics)
            index.maximal_matches(query, min_length=MIN_LENGTH)
            search_secs = model.cost_seconds(index.pagefile.metrics) \
                - before
            rows.append((pages, policy, round(build_secs, 2),
                         round(search_secs, 2),
                         round(build_secs + search_secs, 2)))
            by_policy.setdefault(policy, []).append(
                build_secs + search_secs)
            index.close()
    return ExperimentResult(
        experiment_id="ablation-buffer",
        title=f"Buffer policy ablation on {genome_name} "
              "(modeled seconds)",
        headers=["Buffer pages", "Policy", "Build", "Search", "Total"],
        rows=rows,
        paper_headers=["Finding", "Paper"],
        paper_rows=[
            ("policy", "keep the top of the Link Table resident"),
            ("claim", "a very simple strategy suffices to exploit the "
             "observed locality"),
        ],
        notes=(f"scale={scale}, min_length={MIN_LENGTH}. The paper only "
               "asserts PinTop's sufficiency; the sweep shows how it "
               "compares with generic policies per buffer budget."),
        data={"by_policy": by_policy},
    )
