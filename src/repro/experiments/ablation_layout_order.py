"""Ablation: how much of the suffix tree's disk-search penalty is node
*layout* versus inherently scattered access?

The paper attributes SPINE's disk wins to smaller nodes plus the
backbone's locality, contrasting with suffix-tree nodes laid out in
creation order. A fair question is whether an offline BFS relayout
(clustering the hot top of the tree) closes the gap. This ablation runs
the same cold-cache matching workload against:

* the disk suffix tree in creation order (the paper's implicit target),
* the same tree after a BFS relayout,
* the disk SPINE.
"""

from __future__ import annotations

from repro.alphabet import dna_alphabet
from repro.disk import DiskSpineIndex, DiskSuffixTree
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    DISK_SCALE, effective_scale, genome_pair)
from repro.storage import DiskModel

PAIR = ("HC21", "CEL")
MIN_LENGTH = 12


@register("ablation-st-layout")
def run(scale=None, pair=PAIR, min_length=MIN_LENGTH):
    scale = effective_scale(DISK_SCALE, scale)
    data, query = genome_pair(pair[0], pair[1], scale)
    model = DiskModel()
    probe = DiskSpineIndex(alphabet=dna_alphabet(), buffer_pages=64)
    probe.extend(data)
    budget = max(64, probe.pagefile.page_count // 2)
    probe.close()

    def cold_matching_cost(index):
        index.flush()
        index.pool.clear()
        before = model.cost_seconds(index.pagefile.metrics)
        index.maximal_matches(query, min_length=min_length)
        return model.cost_seconds(index.pagefile.metrics) - before

    rows = []
    st_creation = DiskSuffixTree(dna_alphabet(), buffer_pages=budget,
                                 sync_writes=True)
    st_creation.extend(data)
    st_creation.finalize()
    creation_secs = cold_matching_cost(st_creation)
    rows.append(("suffix tree, creation order", round(creation_secs, 2)))

    st_creation.relayout_bfs()
    bfs_secs = cold_matching_cost(st_creation)
    rows.append(("suffix tree, BFS relayout", round(bfs_secs, 2)))
    st_creation.close()

    spine = DiskSpineIndex(alphabet=dna_alphabet(), buffer_pages=budget,
                           sync_writes=True)
    spine.extend(data)
    spine_secs = cold_matching_cost(spine)
    rows.append(("SPINE", round(spine_secs, 2)))
    spine.close()

    beats_creation = spine_secs < creation_secs
    return ExperimentResult(
        experiment_id="ablation-st-layout",
        title=f"ST node layout ablation, pair {pair} "
              "(cold-cache matching, modeled seconds)",
        headers=["Configuration", "Modeled seconds"],
        rows=rows,
        paper_headers=["Finding", "Paper"],
        paper_rows=[
            ("ST disk layout", "nodes in creation order, scattered"),
            ("comparison target", "MUMmer-class ST without "
             "disk-specific optimization (Section 6.2)"),
        ],
        notes=(f"scale={scale}, buffer={budget} pages, "
               f"min_length={min_length}. Shape criterion (the paper's "
               "actual claim): SPINE beats the creation-order ST -> "
               f"{'HOLDS' if beats_creation else 'VIOLATED'}. "
               "Extension finding: an *offline* BFS relayout can make "
               "the ST competitive or better for cold search — but it "
               "requires the finished tree (forfeiting online growth) "
               "and does not help the write-heavy construction path "
               "where SPINE's append-only backbone dominates (Fig 7)."),
        data={"creation": creation_secs, "bfs": bfs_secs,
              "spine": spine_secs, "beats_creation": beats_creation},
    )
