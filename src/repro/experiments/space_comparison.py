"""Section 7 related-work space comparison.

Measures bytes per indexed character for every structure this library
implements (SPINE packed layout, suffix tree, suffix array, DAWG) next
to the constants the paper quotes for each family.
"""

from __future__ import annotations

from repro.automaton import SuffixAutomaton
from repro.core import SpineIndex
from repro.core.layout import COMPETITOR_BYTES_PER_CHAR
from repro.core.packed import PackedSpineIndex
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import MEMORY_SCALE, effective_scale, genome
from repro.suffixarray import SuffixArrayIndex
from repro.suffixtree import SuffixTree, st_space_model


@register("space")
def run(scale=None, genome_name="ECO"):
    scale = effective_scale(MEMORY_SCALE, scale)
    text = genome(genome_name, scale)
    spine = PackedSpineIndex.from_index(SpineIndex(text)).measured_bytes()
    st = st_space_model(SuffixTree(text).finalize())
    sa = SuffixArrayIndex(text).measured_bytes()
    automaton = SuffixAutomaton(text)
    dawg = automaton.measured_bytes()
    cdawg = automaton.cdawg_statistics()
    rows = [
        ("SPINE (optimized layout)", round(spine["bytes_per_char"], 2),
         "< 12"),
        ("suffix tree (measured model)", round(st["bytes_per_char"], 2),
         "17 (standard)"),
        ("suffix array + LCP", round(sa["bytes_per_char"], 2), "6"),
        ("CDAWG (compacted automaton)",
         round(cdawg["bytes_per_char"], 2), "22+"),
        ("DAWG (suffix automaton)", round(dawg["bytes_per_char"], 2),
         "~34"),
    ]
    ordering_ok = (sa["bytes_per_char"] < spine["bytes_per_char"]
                   < st["bytes_per_char"] < dawg["bytes_per_char"]
                   and cdawg["bytes_per_char"] < dawg["bytes_per_char"])
    return ExperimentResult(
        experiment_id="space",
        title=f"Bytes per indexed character on {genome_name}",
        headers=["Index", "Measured B/char", "Paper quotes"],
        rows=rows,
        paper_headers=["Index", "Paper B/char"],
        paper_rows=sorted(COMPETITOR_BYTES_PER_CHAR.items()),
        notes=(f"scale={scale}. Shape criterion: SA < SPINE < ST < DAWG "
               f"-> {'HOLDS' if ordering_ok else 'VIOLATED'}. Suffix "
               "arrays buy space with supra-linear construction and no "
               "online growth; DAWGs lack position information."),
        data={"ordering_ok": ordering_ok},
    )
