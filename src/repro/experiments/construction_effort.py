"""Supplementary: amortized construction effort.

The paper asserts linear-time online construction. The instrumented
build counts the actual work — link-chain hops, rib creations, extrib
chain hops — whose totals must stay proportional to the string length
(constant per character) across the corpus for the claim to hold in
practice, not just asymptotically.
"""

from __future__ import annotations

from repro.core import SpineIndex
from repro.experiments import register
from repro.experiments.report import ExperimentResult
from repro.experiments.workloads import (
    GENOMES, MEMORY_SCALE, effective_scale, genome)


@register("construction-effort")
def run(scale=None, genomes=None):
    scale = effective_scale(MEMORY_SCALE, scale)
    genomes = genomes or GENOMES
    rows = []
    per_char = []
    for name in genomes:
        text = genome(name, scale)
        index = SpineIndex(text, track_stats=True)
        counters = index.construction_counters
        n = len(text)
        hops = counters["chain_hops"] / n
        per_char.append(hops)
        rows.append((name, n,
                     round(hops, 3),
                     round(counters["rib_creations"] / n, 3),
                     round(counters["extrib_hops"] / n, 4),
                     round(counters["extrib_creations"] / n, 4)))
    spread = max(per_char) / min(per_char) if per_char else 0.0
    bounded = all(h < 4.0 for h in per_char)
    return ExperimentResult(
        experiment_id="construction-effort",
        title="Amortized construction work per character",
        headers=["Genome", "Length", "Chain hops/char", "Ribs/char",
                 "Extrib hops/char", "Extribs/char"],
        rows=rows,
        paper_headers=["Finding", "Paper"],
        paper_rows=[
            ("construction complexity", "linear (online)"),
            ("node count", "exactly length + 1"),
        ],
        notes=(f"scale={scale}. Shape criterion: per-char work is a "
               "small constant independent of length (spread "
               f"{spread:.2f}x across a 16x length range; bounded "
               f"-> {'HOLDS' if bounded and spread < 2.0 else 'VIOLATED'}"
               ")."),
        data={"per_char": per_char, "spread": spread,
              "bounded": bounded},
    )
