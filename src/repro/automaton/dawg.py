"""Online suffix automaton (DAWG) construction.

The classic Blumer et al. automaton: states recognize the right-extension
equivalence classes of substrings; ``transitions + suffix links`` give the
smallest automaton accepting every subword. Built online in O(n).

As the paper notes (Section 7), DAWG nodes do not correspond to string
positions, so the structure cannot report *where* a pattern occurs without
auxiliary data; we expose ``contains``/``count_distinct_substrings`` plus
the byte model used in the space comparison.
"""

from __future__ import annotations

from repro.alphabet import alphabet_for


class _State:
    __slots__ = ("transitions", "link", "length")

    def __init__(self, length):
        self.transitions = {}
        self.link = -1
        self.length = length


class SuffixAutomaton:
    """Suffix automaton over a single string (online)."""

    def __init__(self, text="", alphabet=None):
        if alphabet is None:
            alphabet = alphabet_for(text) if text else None
        self.alphabet = alphabet
        self._states = [_State(0)]
        self._last = 0
        self._n = 0
        if text:
            self.extend(text)

    def __len__(self):
        return self._n

    @property
    def state_count(self):
        """Number of automaton states."""
        return len(self._states)

    @property
    def transition_count(self):
        """Total number of transitions."""
        return sum(len(s.transitions) for s in self._states)

    def extend(self, text):
        """Append ``text`` online."""
        if self.alphabet is None:
            self.alphabet = alphabet_for(text)
        for ch in text:
            self._extend_code(self.alphabet.encode_char(ch))

    def _extend_code(self, code):
        states = self._states
        cur = len(states)
        states.append(_State(states[self._last].length + 1))
        self._n += 1
        p = self._last
        while p != -1 and code not in states[p].transitions:
            states[p].transitions[code] = cur
            p = states[p].link
        if p == -1:
            states[cur].link = 0
        else:
            q = states[p].transitions[code]
            if states[p].length + 1 == states[q].length:
                states[cur].link = q
            else:
                clone = len(states)
                clone_state = _State(states[p].length + 1)
                clone_state.transitions = dict(states[q].transitions)
                clone_state.link = states[q].link
                states.append(clone_state)
                while p != -1 and states[p].transitions.get(code) == q:
                    states[p].transitions[code] = clone
                    p = states[p].link
                states[q].link = clone
                states[cur].link = clone
        self._last = cur

    def contains(self, pattern):
        """True iff ``pattern`` is a substring."""
        state = 0
        for code in self.alphabet.encode(pattern):
            state = self._states[state].transitions.get(code)
            if state is None:
                return False
        return True

    def count_distinct_substrings(self):
        """Number of distinct non-empty substrings (automaton paths)."""
        return sum(s.length - self._states[s.link].length
                   for s in self._states[1:])

    def cdawg_statistics(self):
        """Counts and space model of the *compacted* DAWG (CDAWG).

        The CDAWG (Inenaga et al., cited in the paper's Section 7)
        contracts every non-branching state into its successor, the
        DAWG analogue of suffix-tree edge compression. We derive its
        state/edge counts by chasing unary out-chains from each kept
        (branching or sink) state; each compacted edge then needs a
        label span (start, length) instead of one character, which is
        why CDAWGs still cost 22+ bytes per character in the paper's
        accounting.
        """
        states = self._states
        sink = self._last
        kept = {0, sink}
        for sid, state in enumerate(states):
            if len(state.transitions) != 1:
                kept.add(sid)
        edge_count = 0
        for sid in kept:
            for target in states[sid].transitions.values():
                while target not in kept:
                    target = next(iter(states[target]
                                       .transitions.values()))
                edge_count += 1
        state_bytes = 8           # suffix link + length
        edge_bytes = 4 + 6        # target + (label start, label length)
        total = len(kept) * state_bytes + edge_count * edge_bytes
        n = self._n
        return {
            "states": len(kept),
            "edges": edge_count,
            "total": total,
            "bytes_per_char": total / n if n else float(total),
        }

    def measured_bytes(self):
        """The paper's DAWG space model (~34 B/char for DNA): per state
        a suffix link (4 B), a length (4 B) and per transition a label +
        target (5 B)."""
        states = self.state_count
        transitions = self.transition_count
        total = states * 8 + transitions * 5
        n = self._n
        return {
            "states": states,
            "transitions": transitions,
            "total": total,
            "bytes_per_char": total / n if n else float(total),
        }
