"""Suffix automaton / DAWG baseline (paper Section 7).

DAWGs (directed acyclic word graphs) are the only prior horizontal-ish
compaction the paper acknowledges — and dismisses for their ~34 bytes
per character and lack of positional information. The suffix automaton
here is the online linear-time DAWG construction (Blumer et al.),
included so the space comparison experiment covers the full related-work
table.
"""

from repro.automaton.dawg import SuffixAutomaton

__all__ = ["SuffixAutomaton"]
