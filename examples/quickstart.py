"""Quickstart: build a SPINE index and search it.

Run with::

    python examples/quickstart.py

Walks through the paper's own example string (Figure 3), then a larger
synthetic genome: containment, first/all occurrences, structural
statistics, the space model, and the invariant checker.
"""

from repro import SpineIndex, collect_statistics, verify_index
from repro.core.packed import PackedSpineIndex
from repro.sequences import generate_dna


def paper_example():
    print("=== The paper's example: aaccacaaca (Figure 3) ===")
    index = SpineIndex("aaccacaaca")
    print(f"index: {index}")
    print(f"nodes: {index.node_count} (always length + 1)")
    print(f"edges: {index.edge_counts()}")

    # The string is recoverable from the vertebra labels alone.
    print(f"reconstructed text: {index.text}")

    # Searches.
    print(f"contains 'caca'   -> {index.contains('caca')}")
    print(f"contains 'accaa'  -> {index.contains('accaa')} "
          "(the paper's false-positive example, correctly rejected)")
    print(f"find_all('ac')    -> {index.find_all('ac')}")
    print(f"find_first('ca')  -> {index.find_first('ca')}")

    # Every structural invariant, checked deeply (exhaustive for small
    # strings).
    verify_index(index, deep=True)
    print("deep verification: OK")


def genome_example():
    print()
    print("=== A 50 kb synthetic genome ===")
    genome = generate_dna(50_000, seed=42)
    index = SpineIndex(genome)

    probe = genome[30_000:30_024]
    print(f"24-mer probe occurs at: {index.find_all(probe)}")

    stats = collect_statistics(index)
    print(f"max numeric label: {stats.max_label} "
          "(fits the two-byte optimized fields)")
    print(f"nodes with downstream edges: "
          f"{stats.downstream_percentage:.1f}% (paper: ~30-35%)")

    packed = PackedSpineIndex.from_index(index)
    space = packed.measured_bytes()
    print(f"optimized layout: {space['bytes_per_char']:.2f} bytes/char "
          "(paper: < 12)")

    # Online growth: the index stays queryable while it grows.
    index.extend("ACGT" * 4)
    print(f"after appending 16 chars, length = {len(index)}")


if __name__ == "__main__":
    paper_example()
    genome_example()
