"""One SPINE index over a collection of sequences (Section 1.1).

Run with::

    python examples/multi_sequence_search.py

The paper notes a single SPINE can index multiple strings the way
generalized suffix trees do. This example builds a small "sequence
database" — several plasmid-sized synthetic sequences — and runs
database-style queries against all of them at once: motif lookup with
per-sequence attribution, and streaming a probe sequence to find which
database entries it matches best.
"""

from repro import GeneralizedSpineIndex, dna_alphabet
from repro.sequences import generate_dna


def build_database():
    database = GeneralizedSpineIndex(dna_alphabet())
    for i, (name, length) in enumerate([
            ("plasmid-A", 6_000), ("plasmid-B", 9_000),
            ("plasmid-C", 4_500), ("phage-D", 12_000)]):
        database.add_string(generate_dna(length, seed=100 + i), name=name)
    return database


def motif_lookup(database):
    print("=== Motif lookup across the whole database ===")
    # Take a motif from one member and a motif shared by chance.
    member = generate_dna(9_000, seed=101)  # plasmid-B's sequence
    motif = member[4_000:4_018]
    hits = database.find_all(motif)
    print(f"18-mer motif from plasmid-B -> "
          f"{[(database.string_name(s), pos) for s, pos in hits]}")
    short = member[100:108]
    hits = database.find_all(short)
    print(f"8-mer motif occurs {len(hits)} times across "
          f"{len({s for s, _ in hits})} sequences")


def probe_attribution(database):
    print()
    print("=== Streaming a probe against every member at once ===")
    # A probe assembled from pieces of two members.
    a = generate_dna(6_000, seed=100)   # plasmid-A
    d = generate_dna(12_000, seed=103)  # phage-D
    probe = a[1_000:1_250] + d[8_000:8_250]
    matches = database.maximal_matches(probe, min_length=30)
    per_member = {}
    for sid, local, qstart, length in matches:
        name = database.string_name(sid)
        per_member[name] = per_member.get(name, 0) + length
    print(f"probe of {len(probe)} bp, matches >= 30 bp:")
    for name, total in sorted(per_member.items(),
                              key=lambda kv: -kv[1]):
        print(f"  {name:10s}: {total:>4} matched bases")
    print("(the two source members dominate, as they should)")


def online_admission(database):
    print()
    print("=== Admitting a new sequence online ===")
    new_seq = generate_dna(3_000, seed=200)
    sid = database.add_string(new_seq, name="plasmid-E")
    probe = new_seq[500:530]
    print(f"new member id {sid}; probe from it -> "
          f"{database.find_all(probe)}")


if __name__ == "__main__":
    database = build_database()
    print(f"database: {database.string_count} sequences, "
          f"{len(database.index)} indexed characters total")
    motif_lookup(database)
    probe_attribution(database)
    online_admission(database)
