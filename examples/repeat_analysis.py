"""Repeat analysis and approximate search straight off the backbone.

Run with::

    python examples/repeat_analysis.py

SPINE's link labels already *are* a repeat analysis of the string — the
LEL of each node is the length of the longest earlier-occurring suffix
ending there. This example mines them directly (longest repeat, repeat
landscape, repetitiveness scores across organism classes), then runs an
index-accelerated approximate search (pigeonhole seeding + banded
verification) to find a mutated motif that exact search cannot see.
"""

from repro import SpineIndex, longest_repeated_substring
from repro.align import approximate_occurrences
from repro.core.analysis import repeat_fraction
from repro.sequences import generate_dna, load_corpus_sequence


def repeat_mining():
    print("=== Repeat mining from the link labels ===")
    genome = generate_dna(30_000, seed=77, repeat_fraction=0.4)
    index = SpineIndex(genome)
    sub, hit = longest_repeated_substring(index)
    print(f"longest repeated substring: {hit.length} bp")
    print(f"  occurrences end at {hit.earlier_start + hit.length} and "
          f"{hit.later_start + hit.length}")
    print(f"  head: {sub[:60]}{'...' if len(sub) > 60 else ''}")
    for min_len in (12, 20, 50):
        frac = repeat_fraction(index, min_len)
        print(f"repeat(>= {min_len:>2}) coverage: {100 * frac:5.1f}%")


def organism_profiles():
    print()
    print("=== Repetitiveness across the pseudo-genome corpus ===")
    for name in ("ECO", "CEL", "HC21"):
        text = load_corpus_sequence(name, scale=2_000)
        index = SpineIndex(text)
        frac = repeat_fraction(index, 20)
        print(f"  {name:5s} ({len(text):>6} bp): "
              f"{100 * frac:5.1f}% in repeats >= 20 bp")
    print("(human chromosomes are the repeat-heavy ones, as designed)")


def approximate_motif_search():
    print()
    print("=== Approximate search for a mutated motif ===")
    genome = generate_dna(20_000, seed=78)
    motif = genome[9_000:9_030]
    # A diverged copy with two substitutions and one deletion.
    diverged = motif[:7] + "T" + motif[8:15] + motif[16:25] + "G" \
        + motif[26:]
    index = SpineIndex(genome)
    print(f"exact search for the diverged motif: "
          f"{index.find_all(diverged) or 'nothing'}")
    hits = approximate_occurrences(genome, diverged, max_errors=3,
                                   index=index)
    print(f"approximate search (<= 3 errors): {len(hits)} hit(s)")
    for start, end, dist in hits[:3]:
        print(f"  ~[{start}:{end}] at edit distance {dist}")


if __name__ == "__main__":
    repeat_mining()
    organism_profiles()
    approximate_motif_search()
