"""Disk-resident SPINE (Section 6.2) on a real file.

Run with::

    python examples/disk_index.py

Builds a page-resident SPINE over a genuine on-disk page file with a
bounded buffer pool, compares buffer policies (including the paper's
PinTop strategy built on the Figure 8 locality observation), and
translates the counted I/Os into modeled time on the paper's 2003-era
IDE disk.
"""

import os
import tempfile

from repro.alphabet import dna_alphabet
from repro.disk import DiskSpineIndex, DiskSuffixTree
from repro.sequences import generate_dna
from repro.storage import DiskModel


def build_on_real_file(genome):
    print("=== Page-resident build on a real file ===")
    model = DiskModel()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "spine.pages")
        with DiskSpineIndex(alphabet=dna_alphabet(), path=path,
                            buffer_pages=48, sync_writes=False) as index:
            index.extend(genome)
            index.flush()
            size = os.path.getsize(path)
            snap = index.io_snapshot()
            print(f"page file: {size / 1024:.0f} KiB on disk")
            print(f"physical I/O: {snap['reads']} reads, "
                  f"{snap['writes']} writes "
                  f"(hit rate {100 * snap['buffer_hits'] / (snap['buffer_hits'] + snap['buffer_misses']):.1f}%)")
            probe = genome[10_000:10_020]
            print(f"probe find_all: {index.find_all(probe)}")
            print(f"modeled time on the paper's disk: "
                  f"{model.cost_seconds(index.pagefile.metrics):.2f} s")


def compare_policies(genome, query):
    print()
    print("=== Buffer policies under a tight budget ===")
    model = DiskModel()
    for policy in ("lru", "clock", "pintop"):
        index = DiskSpineIndex(alphabet=dna_alphabet(), buffer_pages=24,
                               policy=policy, sync_writes=True)
        index.extend(genome)
        index.flush()
        index.pool.clear()
        before = model.cost_seconds(index.pagefile.metrics)
        index.maximal_matches(query, min_length=12)
        cost = model.cost_seconds(index.pagefile.metrics) - before
        print(f"  {policy:7s}: cold-cache matching {cost:7.2f} modeled s")
        index.close()


def spine_vs_suffix_tree(genome):
    print()
    print("=== SPINE vs suffix tree, same disk budget (Figure 7) ===")
    model = DiskModel()
    probe = DiskSpineIndex(alphabet=dna_alphabet(), buffer_pages=64)
    probe.extend(genome)
    budget = max(16, probe.pagefile.page_count // 2)
    probe.close()
    for name, cls, finalize in (("SPINE", DiskSpineIndex, False),
                                ("suffix tree", DiskSuffixTree, True)):
        index = cls(dna_alphabet(), buffer_pages=budget,
                    sync_writes=True) if finalize else cls(
            alphabet=dna_alphabet(), buffer_pages=budget,
            sync_writes=True)
        index.extend(genome)
        if finalize:
            index.finalize()
        index.flush()
        snap = index.io_snapshot()
        print(f"  {name:12s}: {snap['reads'] + snap['writes']:>6} page "
              f"I/Os -> {model.cost_seconds(index.pagefile.metrics):7.2f} "
              "modeled s")
        index.close()


if __name__ == "__main__":
    genome = generate_dna(15_000, seed=5)
    query = generate_dna(4_000, seed=6)
    build_on_real_file(genome)
    compare_policies(genome, query)
    spine_vs_suffix_tree(genome)
