"""Streaming search: online queries against an online index.

Run with::

    python examples/streaming_search.py

SPINE builds online (Section 1.1); the cursor API makes querying online
too. This example simulates two streaming scenarios:

1. *find-as-you-type*: a `SearchCursor` narrows occurrences character
   by character, the way an editor or browser incremental-search does;
2. *live sequence feed*: a `StreamMatcher` watches an unbounded stream
   of bases arriving from a (simulated) sequencer and emits maximal
   match events against a reference the moment they complete — no
   buffering of the query.
"""

from repro import SpineIndex
from repro.core.cursor import SearchCursor, StreamMatcher
from repro.sequences import derive_sequence, generate_dna


def find_as_you_type():
    print("=== Find-as-you-type over a 30 kb reference ===")
    reference = generate_dna(30_000, seed=42)
    index = SpineIndex(reference)
    target = reference[17_000:17_014]
    cursor = SearchCursor(index)
    print(f"typing {target!r}:")
    for i, ch in enumerate(target, start=1):
        alive = cursor.feed(ch)
        hits = cursor.occurrences() if alive else []
        print(f"  after {i:>2} chars: "
              f"{len(hits):>5} occurrence(s)"
              + (f", first at {hits[0]}" if hits else ""))
        if len(hits) == 1:
            print(f"  -> unique after {i} characters")
            break


def live_feed_matching():
    print()
    print("=== Live feed against a reference (StreamMatcher) ===")
    reference = generate_dna(20_000, seed=43)
    index = SpineIndex(reference)
    # The "sequencer" emits a diverged read mix: related stretches
    # interleaved with noise.
    related = derive_sequence(reference[5_000:6_000], seed=44,
                              snp_rate=0.05)
    noise = generate_dna(800, seed=45)
    stream = noise[:400] + related + noise[400:]
    matcher = StreamMatcher(index, min_length=18)
    events = []
    for position, base in enumerate(stream):
        event = matcher.feed(base)
        if event is not None:
            events.append(event)
    final = matcher.finish()
    if final is not None:
        events.append(final)
    print(f"stream of {len(stream)} bases -> {len(events)} maximal "
          "match event(s) >= 18 bp, emitted as they completed:")
    for event in events[:6]:
        print(f"  stream[{event.query_start}:{event.query_end}] "
              f"matches reference around {event.data_start} "
              f"({event.length} bp)")
    if len(events) > 6:
        print(f"  ... and {len(events) - 6} more")
    print(f"suffix-set checks performed: {matcher.checks} "
          f"({matcher.checks / len(stream):.2f} per base)")


if __name__ == "__main__":
    find_as_you_type()
    live_feed_matching()
