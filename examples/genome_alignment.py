"""Genome alignment anchoring — the paper's motivating application.

Run with::

    python examples/genome_alignment.py

The introduction motivates SPINE with whole-genome alignment: MUMmer's
pipeline finds maximal unique matches (MUMs) between two genomes and
chains them into an alignment skeleton. This example:

1. simulates two *related* genomes (a derived genome with mutations,
   insertions and a rearrangement, mimicking evolutionary divergence);
2. runs the paper's Section 4 matching operation on its own example
   strings S1/S2, reproducing the boldface output;
3. finds MUM anchors between the two genomes and chains them, reporting
   query coverage — a scaled-down MUMmer run on a SPINE backbone.
"""

from repro.align import align_anchors, find_maximal_matches
from repro.align.mum import coverage
from repro.sequences import derive_sequence, generate_dna


def paper_section4_example():
    print("=== Section 4's example (threshold 6) ===")
    s1 = "acaccgacgatacgagattacgagacgagaatacaacag"
    s2 = "catagagagacgattacgagaaaacgggaaagacgatcc"
    print(f"S1 = {s1}")
    print(f"S2 = {s2}")
    for data_start, query_start, length in find_maximal_matches(
            s1, s2, min_length=6):
        word = s1[data_start:data_start + length]
        print(f"  match {word!r:14} S1@{data_start:>2}  S2@{query_start}")


def mum_anchoring():
    print()
    print("=== MUM anchoring between two related 40 kb genomes ===")
    reference = generate_dna(40_000, seed=11)
    derived = derive_sequence(reference, seed=12, snp_rate=0.03,
                              indel_rate=0.001, rearrangement_blocks=1)
    print(f"reference: {len(reference)} bp, derived: {len(derived)} bp")

    chain = align_anchors(reference, derived, min_length=20,
                          unique_only=True)
    print(f"chained MUM anchors: {len(chain.anchors)}")
    print(f"total anchored bases: {chain.total_matched}")
    print(f"query coverage: {100 * coverage(chain, len(derived)):.1f}%")
    print("first anchors (ref_start, query_start, length):")
    for anchor in chain.anchors[:5]:
        print(f"  {anchor}")
    print("  ...")


if __name__ == "__main__":
    paper_section4_example()
    mum_anchoring()
