"""Benchmark + shape check for Table 6 (suffixes checked).

Doubles as the `ablation-search` bench: set-based (link chain) versus
per-suffix (suffix link) mismatch processing is the design choice the
counters isolate.
"""

from repro.experiments import run_experiment


def test_table6_nodes_checked(benchmark, match_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("table6", scale=match_scale),
        rounds=1, iterations=1)
    # Shape: ST checks more suffixes on every pair; the paper's ratios
    # are 1.63-1.73 — accept a band around them at reduced scale.
    for row in result.rows:
        assert row[4] > 1.2, row
    assert 1.3 < result.data["mean_ratio"] < 2.5
    benchmark.extra_info["rows"] = result.rows
