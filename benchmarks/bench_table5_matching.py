"""Benchmark + shape check for Table 5 (in-memory matching times)."""

from repro.experiments import run_experiment


def test_table5_matching_times(benchmark, match_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("table5", scale=match_scale),
        rounds=1, iterations=1)
    # Shape: SPINE at least as fast as ST on every pair where both run
    # (paper: ~30 % faster), and the longest pair's ST hits the budget.
    assert result.data["mean_ratio"] > 1.0
    dash_rows = [row for row in result.rows if row[2] == "-"]
    assert dash_rows, "expected the HC19 pair to exceed the ST budget"
    benchmark.extra_info["rows"] = [tuple(map(str, r))
                                    for r in result.rows]
