"""Operation-level benchmarks beyond the paper's tables: persistence,
approximate search, generalized collections — the numbers an adopter
asks about first.
"""

import pytest

from repro.align.approximate import (
    approximate_find_all, hamming_find_all, sellers_scan)
from repro.alphabet import dna_alphabet
from repro.core import GeneralizedSpineIndex, SpineIndex
from repro.core.serialize import load_index, save_index
from repro.sequences import generate_dna

N = 30_000


@pytest.fixture(scope="module")
def text():
    return generate_dna(N, seed=81)


@pytest.fixture(scope="module")
def index(text):
    return SpineIndex(text, alphabet=dna_alphabet())


def test_save_index(benchmark, index, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "x.spine"
    benchmark(save_index, index, path)
    assert path.stat().st_size > 0
    benchmark.extra_info["bytes"] = path.stat().st_size


def test_load_index(benchmark, index, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "x.spine"
    save_index(index, path)
    loaded = benchmark(load_index, path)
    assert len(loaded) == len(index)


def test_seeded_approximate_vs_full_dp(benchmark, index, text):
    """The point of the index: seeded k-error search must beat the
    full Sellers DP by a wide margin on a long text."""
    import time

    pattern = text[12_000:12_040]
    mutated = pattern[:13] + "A" + pattern[14:29] + "T" + pattern[30:]
    t0 = time.perf_counter()
    oracle = sellers_scan(text, mutated, 2)
    dp_secs = time.perf_counter() - t0
    result = benchmark(approximate_find_all, index, mutated, 2)
    assert dict(result) == dict(oracle)
    benchmark.extra_info["full_dp_seconds"] = round(dp_secs, 4)


def test_hamming_search(benchmark, index, text):
    pattern = text[20_000:20_032]
    hits = benchmark(hamming_find_all, index, pattern, 2)
    assert any(start == 20_000 for start, _ in hits)


def test_generalized_collection_query(benchmark):
    database = GeneralizedSpineIndex(dna_alphabet())
    for i in range(8):
        database.add_string(generate_dna(4_000, seed=300 + i))
    member = generate_dna(4_000, seed=303)
    probe = member[1_000:1_020]
    hits = benchmark(database.find_all, probe)
    assert (3, 1000) in hits
