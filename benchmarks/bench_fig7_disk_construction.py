"""Benchmark + shape check for Figure 7 (disk construction)."""

from repro.experiments import run_experiment


def test_fig7_disk_construction(benchmark, disk_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("fig7", scale=disk_scale),
        rounds=1, iterations=1)
    # Shape: SPINE builds with materially less I/O on every genome
    # large enough to stress the buffer (paper: about half the time).
    assert result.data["mean_ratio"] > 1.3
    benchmark.extra_info["rows"] = result.rows
