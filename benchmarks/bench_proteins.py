"""Benchmark + shape check for the Section 5.2 proteome quantities."""

from repro.experiments import run_experiment


def test_proteins(benchmark, memory_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("proteins", scale=memory_scale),
        rounds=1, iterations=1)
    assert result.data["shape_ok"]
    for row in result.rows:
        # Downstream-edge nodes stay a minority (paper: < 30 %).
        assert row[3] < 40.0
    benchmark.extra_info["rows"] = result.rows
