"""Sharded construction and querying (``BENCH_shard-*.json``).

Standalone snapshot script measuring what :mod:`repro.shard` buys:

1. **Build speedup** — wall-clock to build the default workload sharded
   with 1 worker process vs. a pool (default 4). SPINE construction is
   a strictly sequential APPEND loop, so this is the first number in
   the repo that can scale with cores. The snapshot records
   ``cpu_count`` alongside the timings: on a single-core machine the
   pool pays IPC for nothing and the speedup honestly reports < 1.
2. **Query latency vs. shard count** — ``find_all`` and
   ``batch_find_all`` across shard counts (default 1/2/4/8) on the
   same text, plus the unsharded baseline, with parity asserted on
   every workload pattern.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py -o benchmarks

writes ``benchmarks/BENCH_shard-<label>.json`` using the same report
envelope as the other bench scripts, so CI collects it with the
``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.core.batch import batch_find_all
from repro.core.index import SpineIndex
from repro.obs.report import build_report
from repro.sequences import generate_dna
from repro.shard import ShardedSpineIndex


def _best_seconds(fn, repeats):
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _make_workload(text, patterns, pattern_length, seed):
    import random

    rng = random.Random(seed)
    out = []
    for _ in range(patterns):
        start = rng.randrange(0, len(text) - pattern_length)
        out.append(text[start:start + pattern_length])
    return out


def _build_seconds(text, shards, workers, max_pattern_len, repeats):
    return _best_seconds(
        lambda: ShardedSpineIndex.build(
            text, shards=shards, workers=workers,
            max_pattern_len=max_pattern_len),
        repeats)


def collect_snapshot(scale=300_000, shards=4, workers=4,
                     query_scale=60_000, shard_counts=(1, 2, 4, 8),
                     patterns=48, pattern_length=12, repeats=2,
                     max_pattern_len=32, seed=17, label=None):
    cpu_count = os.cpu_count() or 1

    # -- build speedup: 1 process vs. a pool -------------------------
    text = generate_dna(scale, seed=seed)
    serial_seconds = _build_seconds(text, shards, 1, max_pattern_len,
                                    repeats)
    pool_seconds = _build_seconds(text, shards, workers,
                                  max_pattern_len, repeats)
    build = {
        "scale": scale,
        "shards": shards,
        "workers": workers,
        "cpu_count": cpu_count,
        "serial_seconds": serial_seconds,
        "pool_seconds": pool_seconds,
        "speedup": serial_seconds / pool_seconds,
    }

    # -- query latency vs. shard count -------------------------------
    qtext = generate_dna(query_scale, seed=seed + 1)
    workload = _make_workload(qtext, patterns, pattern_length,
                              seed + 2)
    flat = SpineIndex(qtext)
    expected = {p: flat.find_all(p) for p in workload}
    query = {
        "scale": query_scale,
        "patterns": patterns,
        "pattern_length": pattern_length,
        "unsharded_find_all_seconds": _best_seconds(
            lambda: [flat.find_all(p) for p in workload], repeats),
        "unsharded_batch_seconds": _best_seconds(
            lambda: batch_find_all(flat, workload), repeats),
        "by_shard_count": [],
    }
    for count in shard_counts:
        sharded = ShardedSpineIndex.build(
            qtext, shards=count, max_pattern_len=max_pattern_len)
        for pattern in workload:
            got = sharded.find_all(pattern)
            if got != expected[pattern]:  # pragma: no cover
                raise AssertionError(
                    f"shard parity violated at k={count} for "
                    f"{pattern!r}")
        query["by_shard_count"].append({
            "shards": count,
            "find_all_seconds": _best_seconds(
                lambda: [sharded.find_all(p) for p in workload],
                repeats),
            "batch_seconds": _best_seconds(
                lambda: sharded.batch_find_all(workload), repeats),
        })

    registry = obs.MetricsRegistry()  # only for the report envelope
    report = build_report(registry, label=label, context={
        "scale": scale,
        "query_scale": query_scale,
        "shards": shards,
        "workers": workers,
        "shard_counts": list(shard_counts),
        "patterns": patterns,
        "pattern_length": pattern_length,
        "max_pattern_len": max_pattern_len,
        "repeats": repeats,
        "seed": seed,
        "cpu_count": cpu_count,
    })
    report["build"] = build
    report["query"] = query
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="write a BENCH_shard-<label>.json snapshot: "
                    "parallel build speedup + query latency vs. "
                    "shard count")
    parser.add_argument("-o", "--outdir", default=".",
                        help="directory for the snapshot (default: .)")
    parser.add_argument("--label",
                        help="snapshot label (default: timestamp)")
    parser.add_argument("--scale", type=int, default=300_000,
                        help="build-benchmark text length")
    parser.add_argument("--query-scale", type=int, default=60_000,
                        help="query-benchmark text length")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--shard-counts", type=int, nargs="+",
                        default=[1, 2, 4, 8])
    parser.add_argument("--patterns", type=int, default=48)
    parser.add_argument("--pattern-length", type=int, default=12)
    parser.add_argument("--max-pattern-len", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)
    label = args.label or time.strftime("%Y%m%d-%H%M%S")
    report = collect_snapshot(
        scale=args.scale, shards=args.shards, workers=args.workers,
        query_scale=args.query_scale,
        shard_counts=tuple(args.shard_counts),
        patterns=args.patterns, pattern_length=args.pattern_length,
        repeats=args.repeats, max_pattern_len=args.max_pattern_len,
        seed=args.seed, label=label)
    path = os.path.join(args.outdir, f"BENCH_shard-{label}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path} "
          f"(build speedup {report['build']['speedup']:.2f}x at "
          f"{report['build']['workers']} worker(s) on "
          f"{report['build']['cpu_count']} core(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
