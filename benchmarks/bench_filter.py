"""Section 7's MRS-style comparison: tiny filter index vs complete
SPINE index.

The paper's claim: the two-level filter approach is far smaller, but
"the performance improvement through complete indexes is typically
substantially more". Both halves are measured here.
"""

import time

from repro.alphabet import dna_alphabet
from repro.core import SpineIndex
from repro.core.packed import PackedSpineIndex
from repro.filterindex import FrequencyFilterIndex
from repro.sequences import generate_dna


def test_filter_vs_complete_index(benchmark):
    text = generate_dna(60_000, seed=71)
    spine = SpineIndex(text, alphabet=dna_alphabet())
    filt = FrequencyFilterIndex(text, window=512, k=3,
                                alphabet=dna_alphabet())
    patterns = [text[i:i + 24] for i in range(0, 59_000, 1_973)]

    def run_filter():
        return [filt.find_all(p) for p in patterns]

    def run_spine():
        return [spine.find_all(p) for p in patterns]

    # Equal answers first (the filter must be exact after verification).
    assert run_filter() == run_spine()

    t0 = time.perf_counter()
    run_spine()
    spine_secs = time.perf_counter() - t0
    filter_result = benchmark.pedantic(run_filter, rounds=3,
                                       iterations=1)
    assert filter_result  # executed

    spine_bpc = PackedSpineIndex.from_index(spine).measured_bytes()[
        "bytes_per_char"]
    filter_bpc = filt.measured_bytes()["bytes_per_char"]
    # Space: the filter is the "very small approximate index".
    assert filter_bpc < spine_bpc / 4
    benchmark.extra_info.update({
        "spine_seconds": round(spine_secs, 4),
        "spine_bytes_per_char": round(spine_bpc, 2),
        "filter_bytes_per_char": round(filter_bpc, 3),
        "filter_ratio": round(filt.filter_ratio(), 4),
    })
