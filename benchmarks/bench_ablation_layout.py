"""Benchmark for the ST node-layout ablation."""

from repro.experiments import run_experiment


def test_ablation_st_layout(benchmark, disk_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-st-layout", scale=disk_scale),
        rounds=1, iterations=1)
    # The paper's claim targets the creation-order layout.
    assert result.data["beats_creation"]
    # The relayout must actually help the ST (sanity of the ablation).
    assert result.data["bfs"] < result.data["creation"]
    benchmark.extra_info["rows"] = result.rows
