"""Benchmark + shape check for Figure 6 (in-memory construction)."""

from repro.experiments import run_experiment


def test_fig6_construction(benchmark, memory_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", scale=memory_scale),
        rounds=1, iterations=1)
    # Shape: SPINE completes on every genome; ST exceeds the scaled
    # memory budget on the longest one; where both run, SPINE is not
    # slower.
    assert result.data["spine_completes"]
    assert result.data["st_oom"]
    for name, length, st_cell, spine_cell in result.rows:
        if st_cell != "OOM" and spine_cell != "OOM":
            assert spine_cell <= st_cell * 1.05
    benchmark.extra_info["rows"] = result.rows


def test_fig6_space(benchmark, memory_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6-space", scale=memory_scale,
                               genomes=["ECO", "CEL"]),
        rounds=1, iterations=1)
    # Shape: SPINE about a third smaller than the suffix tree.
    for name, length, spine_bpc, st_bpc, smaller_pct in result.rows:
        assert smaller_pct > 20.0
    benchmark.extra_info["rows"] = result.rows
