"""Batched vs looped multi-pattern querying (``BENCH_batch-*.json``).

Standalone snapshot script comparing ``repro.core.batch.batch_find_all``
(one shared downstream Link-Table scan for the whole workload) against
the looped per-pattern ``find_all`` baseline, on the in-memory and disk
layers::

    PYTHONPATH=src python benchmarks/bench_batch.py -o benchmarks

writes ``benchmarks/BENCH_batch-<label>.json`` using the same report
envelope as ``bench_report.py``, so CI collects it with the other
``BENCH_*.json`` artifacts. Alongside wall-clock timings it records the
structural counters that explain them: scan nodes per strategy and the
disk layer's page traffic (physical reads + buffer hits), where the
batched form's single sequential LT sweep shows up directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.core.batch import batch_find_all
from repro.core.index import SpineIndex
from repro.disk.spine_disk import DiskSpineIndex
from repro.obs.report import build_report
from repro.sequences import generate_dna


def _best_seconds(fn, repeats):
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _make_workload(text, patterns, pattern_length, seed):
    import random

    rng = random.Random(seed)
    out = []
    for _ in range(patterns):
        start = rng.randrange(0, len(text) - pattern_length)
        out.append(text[start:start + pattern_length])
    return out


def _counters(layer, workload):
    """Scan-node counters for both strategies on ``layer``."""
    prefix = "disk.search" if isinstance(layer, DiskSpineIndex) \
        else "search"
    with obs.metrics_enabled() as registry:
        batch_find_all(layer, workload)
        batched = registry.snapshot()["counters"]
    with obs.metrics_enabled() as registry:
        for pattern in workload:
            layer.find_all(pattern)
        looped = registry.snapshot()["counters"]
    return {
        "batched_scan_nodes": batched.get("batch.scan_nodes", 0),
        "looped_scan_nodes": looped.get(f"{prefix}.scan_nodes", 0),
        "batched_occurrences": batched.get("batch.occurrences", 0),
        "looped_occurrences": looped.get(f"{prefix}.occurrences", 0),
    }


def _disk_page_traffic(disk, workload):
    metrics = disk.pagefile.metrics

    def measure(fn):
        metrics.reset()
        fn()
        return {
            "reads": metrics.reads,
            "buffer_hits": metrics.buffer_hits,
            "page_touches": metrics.reads + metrics.buffer_hits,
        }

    batched = measure(lambda: batch_find_all(disk, workload))
    looped = measure(lambda: [disk.find_all(p) for p in workload])
    return {"batched": batched, "looped": looped}


def collect_snapshot(scale=20_000, patterns=64, pattern_length=8,
                     repeats=3, disk_chars=4_000, buffer_pages=16,
                     threads=4, seed=11, label=None):
    text = generate_dna(scale, seed=seed)
    workload = _make_workload(text, patterns, pattern_length, seed + 1)

    index = SpineIndex(text)
    memory = {
        "batched_seconds": _best_seconds(
            lambda: batch_find_all(index, workload), repeats),
        "batched_threaded_seconds": _best_seconds(
            lambda: batch_find_all(index, workload, threads=threads),
            repeats),
        "looped_seconds": _best_seconds(
            lambda: [index.find_all(p) for p in workload], repeats),
    }
    memory["speedup"] = memory["looped_seconds"] / \
        memory["batched_seconds"]
    memory["counters"] = _counters(index, workload)

    disk = DiskSpineIndex(alphabet=index.alphabet,
                          buffer_pages=buffer_pages)
    disk.extend(text[:disk_chars])
    disk_workload = [p for p in workload
                     if disk.find_all(p)] or workload[:8]
    disk_result = {
        "chars": disk_chars,
        "buffer_pages": buffer_pages,
        "patterns": len(disk_workload),
        "batched_seconds": _best_seconds(
            lambda: batch_find_all(disk, disk_workload), repeats),
        "looped_seconds": _best_seconds(
            lambda: [disk.find_all(p) for p in disk_workload], repeats),
    }
    disk_result["speedup"] = disk_result["looped_seconds"] / \
        disk_result["batched_seconds"]
    disk_result["counters"] = _counters(disk, disk_workload)
    disk_result["page_traffic"] = _disk_page_traffic(disk,
                                                     disk_workload)
    disk.close()

    registry = obs.MetricsRegistry()  # only for the report envelope
    report = build_report(registry, label=label, context={
        "scale": scale,
        "patterns": patterns,
        "pattern_length": pattern_length,
        "repeats": repeats,
        "disk_chars": disk_chars,
        "buffer_pages": buffer_pages,
        "threads": threads,
        "seed": seed,
    })
    report["memory"] = memory
    report["disk"] = disk_result
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="write a BENCH_batch-<label>.json snapshot "
                    "comparing batched vs looped find_all")
    parser.add_argument("-o", "--outdir", default=".",
                        help="directory for the snapshot (default: .)")
    parser.add_argument("--label",
                        help="snapshot label (default: timestamp)")
    parser.add_argument("--scale", type=int, default=20_000)
    parser.add_argument("--patterns", type=int, default=64)
    parser.add_argument("--pattern-length", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--disk-chars", type=int, default=4_000)
    parser.add_argument("--buffer-pages", type=int, default=16)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)
    label = args.label or time.strftime("%Y%m%d-%H%M%S")
    report = collect_snapshot(
        scale=args.scale, patterns=args.patterns,
        pattern_length=args.pattern_length, repeats=args.repeats,
        disk_chars=args.disk_chars, buffer_pages=args.buffer_pages,
        threads=args.threads, seed=args.seed, label=label)
    path = os.path.join(args.outdir, f"BENCH_batch-{label}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path} "
          f"(memory speedup {report['memory']['speedup']:.2f}x, "
          f"disk speedup {report['disk']['speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
