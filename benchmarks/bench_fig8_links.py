"""Benchmark + shape check for Figure 8 (link destinations)."""

from repro.experiments import run_experiment


def test_fig8_link_distribution(benchmark, memory_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8", scale=memory_scale),
        rounds=1, iterations=1)
    assert result.data["shape_ok"]
    for name, series in result.data["series"].items():
        # Most links point to the upper backbone.
        assert series[0] == max(series), name
    benchmark.extra_info["series"] = result.data["series"]
