"""Shared scales for the benchmark suite.

Benchmarks run every experiment at reduced scales so the whole suite
finishes in minutes of pure Python; set ``REPRO_BENCH_SCALE_FACTOR`` to
enlarge them uniformly for a higher-fidelity run.
"""

import os

import pytest


def _factor():
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE_FACTOR", "1"))
    except ValueError:
        return 1.0


@pytest.fixture(scope="session")
def memory_scale():
    """Chars per paper-Mbp for in-memory structure experiments."""
    return max(200, int(5_000 * _factor()))


@pytest.fixture(scope="session")
def match_scale():
    """Chars per paper-Mbp for streaming-match experiments."""
    return max(200, int(2_500 * _factor()))


@pytest.fixture(scope="session")
def disk_scale():
    """Chars per paper-Mbp for page-level disk experiments."""
    return max(100, int(500 * _factor()))
