"""Benchmark + shape check for Table 7 (disk matching speedup)."""

from repro.experiments import run_experiment


def test_table7_disk_matching(benchmark, disk_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("table7", scale=disk_scale),
        rounds=1, iterations=1)
    # Shape: SPINE faster on every pair; the paper reports ~50 %
    # speedups — require a clearly positive mean at reduced scale.
    assert result.data["mean_speedup"] > 15.0
    benchmark.extra_info["rows"] = result.rows
