"""Benchmark + shape check for the Section 7 space comparison."""

from repro.experiments import run_experiment


def test_space_comparison(benchmark, memory_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("space", scale=memory_scale),
        rounds=1, iterations=1)
    assert result.data["ordering_ok"]
    benchmark.extra_info["rows"] = result.rows
