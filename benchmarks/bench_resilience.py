"""Resilience-layer overhead snapshot (``BENCH_resilience-*.json``).

The resilience work threads a cooperative cancellation token through
the traversal and occurrence-scan hot loops. This script measures what
that costs when nothing is being cancelled — the only case that
matters for steady-state throughput::

    PYTHONPATH=src python benchmarks/bench_resilience.py -o benchmarks

Three measurements, each best-of-``repeats``:

* ``query``: ``find_all_at`` with ``cancel=None`` (the untouched
  pre-resilience hot path) vs. a live token with a far-future deadline
  (the path every ``QueryService`` query takes). The ``overhead_pct``
  figure is the headline: the target is **< 3%**. Measurements are
  interleaved best-of-``repeats``; on a contended host the noise floor
  is a few percent either way, so treat a single ``within_target``
  flip as a re-run prompt, not a regression.
* ``batch``: the same comparison through ``batch_find_all`` (token per
  traversal plus chunked occurrence sweep).
* ``primitives``: raw ops/sec of the per-call breaker protocol
  (``allow`` + ``record_success``) and a no-fault ``RetryPolicy.call``
  round trip, to show the per-shard and per-read bookkeeping is
  microseconds, not milliseconds.

The report uses the shared ``BENCH_*.json`` envelope so CI collects it
with the other snapshots.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro import obs
from repro.core.batch import batch_find_all, find_all_at
from repro.core.index import SpineIndex
from repro.obs.report import build_report
from repro.resilience import (CancellationToken, CircuitBreaker,
                              Deadline, RetryPolicy)
from repro.sequences import generate_dna

#: The headline target: token checks may cost at most this much.
OVERHEAD_TARGET_PCT = 3.0


def _best_seconds(fn, repeats):
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _compare(baseline_fn, token_fn, repeats):
    """Best-of timings for the two variants, interleaved (so clock
    drift and cache warming hit both sides equally), after one warmup
    round each."""
    baseline_fn()
    token_fn()
    base = token = None
    for _ in range(repeats):
        started = time.perf_counter()
        baseline_fn()
        elapsed = time.perf_counter() - started
        base = elapsed if base is None else min(base, elapsed)
        started = time.perf_counter()
        token_fn()
        elapsed = time.perf_counter() - started
        token = elapsed if token is None else min(token, elapsed)
    overhead = 100.0 * (token - base) / base if base > 0 else 0.0
    return {
        "baseline_seconds": base,
        "token_seconds": token,
        "overhead_pct": overhead,
        "within_target": overhead < OVERHEAD_TARGET_PCT,
    }


def _make_workload(text, patterns, pattern_length, seed):
    rng = random.Random(seed)
    return [text[start:start + pattern_length]
            for start in (rng.randrange(0, len(text) - pattern_length)
                          for _ in range(patterns))]


def _far_future_token():
    return CancellationToken(Deadline.after(3600.0), op="bench")


def _query_overhead(index, workload, repeats):
    limit = len(index)

    def baseline():
        for pattern in workload:
            find_all_at(index, pattern, limit, None)

    def with_token():
        for pattern in workload:
            find_all_at(index, pattern, limit, _far_future_token())

    return _compare(baseline, with_token, repeats)


def _batch_overhead(index, workload, repeats, rounds=10):
    # One batch is a few milliseconds — too short to time reliably on
    # a busy host. Each measurement runs ``rounds`` batches.
    def baseline():
        for _ in range(rounds):
            batch_find_all(index, workload)

    def with_token():
        for _ in range(rounds):
            batch_find_all(index, workload,
                           cancel=_far_future_token())

    return _compare(baseline, with_token, repeats)


def _primitive_costs(repeats, calls=100_000):
    breaker = CircuitBreaker("bench")

    def breaker_round():
        for _ in range(calls):
            breaker.allow()
            breaker.record_success()

    policy = RetryPolicy(retries=3)
    payload = "x"

    def retry_round():
        for _ in range(calls):
            policy.call(lambda: payload)

    checkpoint_token = _far_future_token()

    def checkpoint_round():
        checkpoint = checkpoint_token.checkpoint
        for _ in range(calls):
            checkpoint()

    out = {}
    for name, fn in (("breaker_call", breaker_round),
                     ("retry_noop_call", retry_round),
                     ("token_checkpoint", checkpoint_round)):
        seconds = _best_seconds(fn, repeats)
        out[name] = {
            "calls": calls,
            "seconds": seconds,
            "ops_per_sec": calls / seconds if seconds > 0 else None,
        }
    return out


def collect_snapshot(scale=60_000, patterns=96, pattern_length=8,
                     repeats=9, seed=13, label=None):
    text = generate_dna(scale, seed=seed)
    workload = _make_workload(text, patterns, pattern_length, seed + 1)
    index = SpineIndex(text)

    query = _query_overhead(index, workload, repeats)
    batch = _batch_overhead(index, workload, repeats)
    primitives = _primitive_costs(max(2, repeats // 2))

    registry = obs.MetricsRegistry()  # only for the report envelope
    report = build_report(registry, label=label, context={
        "scale": scale,
        "patterns": patterns,
        "pattern_length": pattern_length,
        "repeats": repeats,
        "seed": seed,
        "overhead_target_pct": OVERHEAD_TARGET_PCT,
    })
    report["resilience"] = {
        "query": query,
        "batch": batch,
        "primitives": primitives,
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="write a BENCH_resilience-<label>.json snapshot "
                    "of cancellation/breaker/retry overhead")
    parser.add_argument("-o", "--outdir", default="benchmarks")
    parser.add_argument("--label",
                        help="snapshot label (default: timestamp)")
    parser.add_argument("--scale", type=int, default=60_000)
    parser.add_argument("--patterns", type=int, default=96)
    parser.add_argument("--pattern-length", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)

    label = args.label or time.strftime("%Y%m%d-%H%M%S")
    report = collect_snapshot(
        scale=args.scale, patterns=args.patterns,
        pattern_length=args.pattern_length, repeats=args.repeats,
        seed=args.seed, label=label)
    os.makedirs(args.outdir, exist_ok=True)
    path = os.path.join(args.outdir, f"BENCH_resilience-{label}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    resilience = report["resilience"]
    print(f"wrote {path}")
    for section in ("query", "batch"):
        data = resilience[section]
        verdict = "OK" if data["within_target"] else "OVER TARGET"
        print(f"  {section}: token overhead "
              f"{data['overhead_pct']:+.2f}% "
              f"(target < {OVERHEAD_TARGET_PCT}%) [{verdict}]")
    for name, data in resilience["primitives"].items():
        print(f"  {name}: {data['ops_per_sec']:,.0f} ops/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
