"""Micro-benchmarks of the core operations (true pytest-benchmark
timing loops, unlike the single-shot experiment benches).

These give per-operation numbers a downstream user cares about:
construction throughput per index family, point queries, occurrence
enumeration, and matching-statistics streaming.
"""

import pytest

from repro.automaton import SuffixAutomaton
from repro.core import SpineIndex
from repro.core.matching import matching_statistics
from repro.core.packed import PackedSpineIndex
from repro.sequences import generate_dna
from repro.suffixarray import SuffixArrayIndex
from repro.suffixtree import SuffixTree

N = 20_000


@pytest.fixture(scope="module")
def text():
    return generate_dna(N, seed=7)


@pytest.fixture(scope="module")
def query():
    return generate_dna(N // 4, seed=8)


@pytest.fixture(scope="module")
def spine(text):
    return SpineIndex(text)


def test_build_spine(benchmark, text):
    index = benchmark(SpineIndex, text)
    assert len(index) == len(text)


def test_build_suffix_tree(benchmark, text):
    tree = benchmark(SuffixTree, text)
    assert len(tree) == len(text)


def test_build_suffix_array(benchmark, text):
    sa = benchmark(SuffixArrayIndex, text)
    assert len(sa) == len(text)


def test_build_dawg(benchmark, text):
    dawg = benchmark(SuffixAutomaton, text)
    assert len(dawg) == len(text)


def test_pack_spine(benchmark, spine):
    packed = benchmark(PackedSpineIndex.from_index, spine)
    assert packed.measured_bytes()["bytes_per_char"] < 12.0


def test_spine_contains(benchmark, spine, text):
    pattern = text[N // 2:N // 2 + 24]
    assert benchmark(spine.contains, pattern)


def test_spine_find_all(benchmark, spine, text):
    pattern = text[1000:1012]
    starts = benchmark(spine.find_all, pattern)
    assert 1000 in starts


def test_spine_matching_statistics(benchmark, spine, query):
    result = benchmark.pedantic(matching_statistics, args=(spine, query),
                                rounds=3, iterations=1)
    assert len(result.lengths) == len(query)


def test_packed_find_all(benchmark, spine, text):
    packed = PackedSpineIndex.from_index(spine)
    pattern = text[1000:1012]
    starts = benchmark(packed.find_all, pattern)
    assert 1000 in starts


def test_packed_matching_statistics(benchmark, spine, query):
    packed = PackedSpineIndex.from_index(spine)
    result = benchmark.pedantic(packed.matching_statistics,
                                args=(query,), rounds=3, iterations=1)
    assert len(result.lengths) == len(query)


def test_stream_matcher_throughput(benchmark, spine, query):
    from repro.core.cursor import StreamMatcher

    def run():
        matcher = StreamMatcher(spine, min_length=12)
        events = sum(1 for ch in query if matcher.feed(ch))
        matcher.finish()
        return events

    benchmark.pedantic(run, rounds=3, iterations=1)
