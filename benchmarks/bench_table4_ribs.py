"""Benchmark + shape check for Table 4 (rib fanout distribution)."""

from repro.experiments import run_experiment


def test_table4_rib_distribution(benchmark, memory_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("table4", scale=memory_scale),
        rounds=1, iterations=1)
    assert result.data["shape_ok"]
    for row in result.rows:
        name, p1, p2, p3, p4, total = row
        # Decaying fanout, minority with downstream edges (paper:
        # 28-33 %; generous bound for small scales).
        assert p1 >= p2 >= p3 >= p4
        assert total < 45.0
    benchmark.extra_info["rows"] = result.rows
