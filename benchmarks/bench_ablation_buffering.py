"""Benchmark for the Section 6.2 buffering-policy ablation."""

from repro.experiments import run_experiment


def test_ablation_buffering(benchmark, disk_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-buffer", scale=disk_scale,
                               buffer_sizes=[16, 48]),
        rounds=1, iterations=1)
    by_policy = result.data["by_policy"]
    # All policies must complete; the paper's claim is only that the
    # simple PinTop strategy suffices — it must stay within 2x of the
    # best policy at every budget.
    best = [min(vals) for vals in zip(*by_policy.values())]
    for i, total in enumerate(by_policy["pintop"]):
        assert total <= best[i] * 2.0
    benchmark.extra_info["rows"] = result.rows
