"""Construction complexity checks.

The paper claims linear-time online construction for SPINE (and for the
suffix tree), and attributes supra-linear behaviour to suffix arrays
(Section 7). This bench measures per-character build time across a 4x
length range and asserts near-linearity for SPINE/ST while allowing the
suffix array its O(n log n) growth.
"""

import time

from repro.alphabet import dna_alphabet
from repro.core import SpineIndex
from repro.sequences import generate_dna
from repro.suffixarray import SuffixArrayIndex
from repro.suffixtree import SuffixTree

SIZES = (10_000, 20_000, 40_000)


def _per_char_times(builder):
    import gc

    out = []
    for n in SIZES:
        text = generate_dna(n, seed=1_000 + n)
        # The cyclic collector's pauses scale with the number of live
        # objects and would masquerade as algorithmic growth; disable
        # it around the timed region.
        gc.disable()
        try:
            t0 = time.perf_counter()
            builder(text)
            out.append((time.perf_counter() - t0) / n)
        finally:
            gc.enable()
    return out


def test_spine_construction_linear(benchmark):
    times = benchmark.pedantic(
        lambda: _per_char_times(
            lambda t: SpineIndex(t, alphabet=dna_alphabet())),
        rounds=1, iterations=1)
    # Per-char time must stay within a small factor across a 4x range
    # (noise allowance for a Python loop).
    assert max(times) / min(times) < 2.5, times
    benchmark.extra_info["us_per_char"] = [round(t * 1e6, 3)
                                           for t in times]


def test_suffix_tree_construction_linear(benchmark):
    times = benchmark.pedantic(
        lambda: _per_char_times(
            lambda t: SuffixTree(t, alphabet=dna_alphabet())),
        rounds=1, iterations=1)
    assert max(times) / min(times) < 2.5, times
    benchmark.extra_info["us_per_char"] = [round(t * 1e6, 3)
                                           for t in times]


def test_spine_not_slower_growth_than_suffix_array(benchmark):
    spine_times = _per_char_times(
        lambda t: SpineIndex(t, alphabet=dna_alphabet()))
    sa_times = benchmark.pedantic(
        lambda: _per_char_times(
            lambda t: SuffixArrayIndex(t, alphabet=dna_alphabet())),
        rounds=1, iterations=1)
    # Growth factor across the size range: SPINE must not scale worse
    # than the (supra-linear) suffix array.
    spine_growth = spine_times[-1] / spine_times[0]
    sa_growth = sa_times[-1] / sa_times[0]
    assert spine_growth < sa_growth * 1.5
    benchmark.extra_info["spine_growth"] = round(spine_growth, 3)
    benchmark.extra_info["sa_growth"] = round(sa_growth, 3)
