"""Benchmark + shape check for the amortized construction effort."""

from repro.experiments import run_experiment


def test_construction_effort(benchmark, memory_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("construction-effort",
                               scale=memory_scale),
        rounds=1, iterations=1)
    assert result.data["bounded"]
    assert result.data["spread"] < 2.0
    benchmark.extra_info["rows"] = result.rows
