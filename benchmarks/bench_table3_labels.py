"""Benchmark + shape check for Table 3 (maximum label values)."""

from repro.experiments import run_experiment


def test_table3_max_labels(benchmark, memory_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("table3", scale=memory_scale),
        rounds=1, iterations=1)
    # Shape: every numeric label fits the optimized two-byte fields and
    # is far below the string length (the paper's Table 3 point).
    assert result.data["two_byte_fit"]
    for name, length, max_label, *_ in result.rows:
        assert max_label < length / 10
    benchmark.extra_info["rows"] = result.rows
