"""Machine-readable performance snapshots (``BENCH_*.json``).

Unlike the pytest-benchmark suites next door, this is a standalone
script: it runs one standardized workload — metrics-disabled wall-clock
timings for the hot paths, then an instrumented pass for the
construction / search / disk / serialize counters — and writes a single
JSON document every future PR can diff against::

    PYTHONPATH=src python benchmarks/bench_report.py -o benchmarks

produces ``benchmarks/BENCH_<label>.json`` (label defaults to a
timestamp). The document embeds the :mod:`repro.obs` report shape, so
``repro profile`` output and bench snapshots are directly comparable.

Scale knobs are deliberately modest (pure-Python construction); raise
``--scale`` for higher-fidelity runs.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro import obs
from repro.core.index import SpineIndex
from repro.core.matching import matching_statistics
from repro.core.serialize import load_index, save_index
from repro.disk.spine_disk import DiskSpineIndex
from repro.obs.report import build_report, observe_index
from repro.sequences import generate_dna


def _best_seconds(fn, repeats):
    """Best-of-N wall-clock seconds for one call of ``fn``."""
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _timed_workload(text, queries, repeats, seed):
    """Metrics-disabled timings: what the hot paths really cost."""
    scale = len(text)
    build_seconds = _best_seconds(lambda: SpineIndex(text), repeats)
    index = SpineIndex(text)
    rng = random.Random(seed)
    plen = 12
    patterns = [
        text[start:start + plen]
        for start in (rng.randrange(0, scale - plen)
                      for _ in range(queries))
    ]

    def run_find_all():
        for pattern in patterns:
            index.find_all(pattern)

    find_all_seconds = _best_seconds(run_find_all, repeats)
    query = generate_dna(max(64, scale // 4), seed=seed + 1)
    match_seconds = _best_seconds(
        lambda: matching_statistics(index, query), 1)
    return {
        "construction": {
            "chars": scale,
            "best_seconds": build_seconds,
            "chars_per_second": scale / build_seconds,
        },
        "find_all": {
            "queries": queries,
            "pattern_length": plen,
            "best_seconds": find_all_seconds,
            "queries_per_second": queries / find_all_seconds,
        },
        "matching_statistics": {
            "query_chars": len(query),
            "seconds": match_seconds,
            "chars_per_second": len(query) / match_seconds,
        },
    }


def _instrumented_pass(text, queries, disk_chars, buffer_pages, seed,
                       trace_sample=5):
    """One metrics-plus-tracing run across every instrumented layer.

    Returns ``(metrics_snapshot, trace_summary)``; the trace summary is
    the :func:`repro.obs.trace.summarize_spans` shape (span counts,
    event counts, PT-rejection rate, pages-per-query distribution).
    """
    import tempfile

    rng = random.Random(seed)
    plen = 12
    with obs.tracing_enabled(sample_every=trace_sample) as tracer, \
            obs.metrics_enabled() as registry:
        index = SpineIndex(text)
        for _ in range(queries):
            start = rng.randrange(0, len(text) - plen)
            index.find_all(text[start:start + plen])
        matching_statistics(index, generate_dna(max(64, len(text) // 8),
                                                seed=seed + 2))
        observe_index(registry, index)
        fd, tmp = tempfile.mkstemp(suffix=".spine")
        os.close(fd)
        try:
            save_index(index, tmp)
            load_index(tmp)
        finally:
            os.unlink(tmp)
        disk = DiskSpineIndex(alphabet=index.alphabet,
                              buffer_pages=buffer_pages)
        disk.extend(text[:disk_chars])
        for _ in range(queries):
            start = rng.randrange(0, max(1, disk_chars - plen))
            disk.contains(text[start:start + plen])
        disk.io_snapshot()
        disk.close()
        snapshot = registry.snapshot()
        trace_summary = tracer.summary()
    return snapshot, trace_summary


def collect_snapshot(scale=20_000, queries=100, repeats=3,
                     disk_chars=4_000, buffer_pages=32, seed=7,
                     label=None, trace_sample=5):
    """The full BENCH document (workload timings + metrics counters +
    trace summary)."""
    text = generate_dna(scale, seed=seed)
    workload = _timed_workload(text, queries, repeats, seed)
    metrics, trace_summary = _instrumented_pass(
        text, queries, min(disk_chars, scale), buffer_pages, seed,
        trace_sample=trace_sample)
    registry = obs.MetricsRegistry()  # only for the report envelope
    report = build_report(registry, label=label, context={
        "scale": scale,
        "queries": queries,
        "repeats": repeats,
        "disk_chars": min(disk_chars, scale),
        "buffer_pages": buffer_pages,
        "seed": seed,
        "trace_sample": trace_sample,
    })
    report["metrics"] = metrics
    report["workload"] = workload
    report["trace"] = trace_summary
    return report


#: Throughput figures compared across snapshots: (json path, label).
_COMPARE_KEYS = (
    (("construction", "chars_per_second"), "construction chars/s"),
    (("find_all", "queries_per_second"), "find_all queries/s"),
    (("matching_statistics", "chars_per_second"),
     "matching_statistics chars/s"),
)


def compare_reports(current, previous, tolerance=0.25):
    """Regression check of ``current`` against ``previous``.

    Compares the workload throughput figures; a figure is a
    **regression** when it dropped by more than ``tolerance``
    (fractional — the default 0.25 tolerates the noise floor of
    best-of-N timings on shared CI runners). Returns a JSON-ready
    document; ``doc["regressions"]`` is empty when the snapshot is
    clean.
    """
    doc = {
        "previous_label": previous.get("label"),
        "tolerance": tolerance,
        "figures": [],
        "regressions": [],
    }
    cur_load = current.get("workload") or {}
    prev_load = previous.get("workload") or {}
    for path, label in _COMPARE_KEYS:
        section, key = path
        cur = (cur_load.get(section) or {}).get(key)
        prev = (prev_load.get(section) or {}).get(key)
        if not cur or not prev:
            continue
        ratio = cur / prev
        figure = {
            "figure": label,
            "current": cur,
            "previous": prev,
            "ratio": ratio,
        }
        doc["figures"].append(figure)
        if ratio < 1.0 - tolerance:
            doc["regressions"].append(figure)
    return doc


def _find_previous_snapshot(path):
    """Resolve ``--compare``: a snapshot file, or the newest
    ``BENCH_*.json`` with a workload section inside a directory."""
    if os.path.isfile(path):
        with open(path) as handle:
            return json.load(handle)
    if os.path.isdir(path):
        candidates = sorted(
            (name for name in os.listdir(path)
             if name.startswith("BENCH_") and name.endswith(".json")),
            key=lambda name: os.path.getmtime(os.path.join(path, name)),
            reverse=True)
        for name in candidates:
            with open(os.path.join(path, name)) as handle:
                doc = json.load(handle)
            if doc.get("workload"):
                return doc
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="write a BENCH_<label>.json performance snapshot")
    parser.add_argument("-o", "--outdir", default=".",
                        help="directory for the snapshot (default: .)")
    parser.add_argument("--label",
                        help="snapshot label (default: timestamp)")
    parser.add_argument("--scale", type=int, default=20_000,
                        help="data-string length (default 20000)")
    parser.add_argument("--queries", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--disk-chars", type=int, default=4_000)
    parser.add_argument("--buffer-pages", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--trace-sample", type=int, default=5,
                        help="trace every Nth query in the "
                             "instrumented pass (default 5)")
    parser.add_argument("--compare", metavar="PATH",
                        help="previous BENCH_*.json (or a directory "
                             "holding them): report throughput "
                             "regressions against it")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="fractional throughput drop tolerated "
                             "before flagging (default 0.25)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when a regression is flagged "
                             "(default: warn only)")
    args = parser.parse_args(argv)
    label = args.label or time.strftime("%Y%m%d-%H%M%S")
    report = collect_snapshot(scale=args.scale, queries=args.queries,
                              repeats=args.repeats,
                              disk_chars=args.disk_chars,
                              buffer_pages=args.buffer_pages,
                              seed=args.seed, label=label,
                              trace_sample=args.trace_sample)
    regressions = []
    if args.compare:
        previous = _find_previous_snapshot(args.compare)
        if previous is None:
            print(f"compare: no usable snapshot under {args.compare}; "
                  "skipping")
        else:
            comparison = compare_reports(report, previous,
                                         tolerance=args.tolerance)
            report["comparison"] = comparison
            regressions = comparison["regressions"]
            for figure in comparison["figures"]:
                marker = ("REGRESSION" if figure in regressions
                          else "ok")
                print(f"compare: {figure['figure']}: "
                      f"{figure['current']:,.0f} vs "
                      f"{figure['previous']:,.0f} "
                      f"({figure['ratio']:.2f}x) {marker}")
    path = os.path.join(args.outdir, f"BENCH_{label}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    throughput = report["workload"]["construction"]["chars_per_second"]
    print(f"wrote {path} (construction {throughput:,.0f} chars/s)")
    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
