"""Benchmark + shape check for Table 2 (node layout / packed size).

Also serves as the `ablation-layout` bench: the naive-vs-optimized
space gap is the design choice being measured.
"""

from repro.experiments import run_experiment


def test_table2_layout(benchmark, memory_scale):
    result = benchmark.pedantic(
        lambda: run_experiment("table2", scale=memory_scale,
                               genomes=["ECO", "CEL"]),
        rounds=1, iterations=1)
    # Shape: naive worst case is the paper's 48.25 B; the measured
    # optimized layout must beat the paper's 12 B/char bound and the
    # 17 B/char suffix-tree figure.
    total_row = result.rows[-1]
    assert abs(total_row[-1] - 48.25) < 1e-9
    for _, _, model_bpc, packed_bpc in result.data["measured"]:
        assert packed_bpc < 12.0
        assert model_bpc < 12.0
    benchmark.extra_info["measured"] = result.data["measured"]
