"""WAL extend-throughput snapshot (``BENCH_wal-*.json``).

Every acknowledged ``extend()`` on a v3 disk index is framed into the
write-ahead log (and, per policy, fsynced) before any page mutates.
This script measures what that durability costs::

    PYTHONPATH=src python benchmarks/bench_wal.py -o benchmarks

One measurement per configuration, best-of-``repeats``: a fresh disk
index is built and checkpointed, then ``extends`` chunks of
``chunk_chars`` characters are appended and timed. Configurations:

* ``disabled`` — ``wal_fsync=None``: the pre-WAL seed path (no log at
  all); the baseline every policy is compared against.
* ``off`` — framing only; the log is synced at checkpoint/close.
  Measures the pure CRC+write cost of the frame.
* ``interval`` — fsync every ``wal_fsync_interval`` appends; the
  amortized middle ground.
* ``always`` — fsync per append: full acknowledged-write durability,
  and the one figure dominated by the disk, not by Python.

The per-policy ``slowdown`` ratio (vs. ``disabled``) is the headline.
``always`` is expected to be much slower on real disks — that is the
price of the durability contract, not a regression; ``off`` should be
within a few percent of ``disabled``.

The report uses the shared ``BENCH_*.json`` envelope so CI collects it
with the other snapshots.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

from repro import obs
from repro.alphabet import dna_alphabet
from repro.disk.spine_disk import DiskSpineIndex
from repro.obs.report import build_report
from repro.sequences import generate_dna
from repro.storage.wal import wal_path_for

#: (name, wal_fsync, wal_fsync_interval) per measured configuration.
CONFIGURATIONS = (
    ("disabled", None, 32),
    ("off", "off", 32),
    ("interval", "interval", 32),
    ("always", "always", 32),
)


def _time_extends(workdir, base, chunks, policy, interval,
                  buffer_pages):
    """Build a fresh checkpointed index and time the extend loop."""
    path = os.path.join(workdir, "bench.spine")
    index = DiskSpineIndex(alphabet=dna_alphabet(), path=path,
                           buffer_pages=buffer_pages,
                           wal_fsync=policy,
                           wal_fsync_interval=interval)
    try:
        index.extend(base)
        index.checkpoint()
        started = time.perf_counter()
        for chunk in chunks:
            index.extend(chunk)
        elapsed = time.perf_counter() - started
        wal_bytes = (os.path.getsize(wal_path_for(path))
                     if index.wal is not None else 0)
    finally:
        index.abort()
        for leftover in (path, wal_path_for(path)):
            if os.path.exists(leftover):
                os.unlink(leftover)
    return elapsed, wal_bytes


def collect_snapshot(base_chars=4000, extends=64, chunk_chars=64,
                     buffer_pages=32, repeats=3, seed=29, label=None):
    base = generate_dna(base_chars, seed=seed)
    chunks = [generate_dna(chunk_chars, seed=seed + 1 + i)
              for i in range(extends)]
    total_chars = extends * chunk_chars

    results = {}
    workdir = tempfile.mkdtemp(prefix="bench-wal-")
    try:
        for name, policy, interval in CONFIGURATIONS:
            best = None
            wal_bytes = 0
            for _ in range(repeats):
                elapsed, wal_bytes = _time_extends(
                    workdir, base, chunks, policy, interval,
                    buffer_pages)
                best = elapsed if best is None else min(best, elapsed)
            results[name] = {
                "fsync_policy": policy,
                "seconds": best,
                "chars_per_sec": (total_chars / best
                                  if best > 0 else None),
                "extends_per_sec": (extends / best
                                    if best > 0 else None),
                "wal_bytes": wal_bytes,
            }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    baseline = results["disabled"]["seconds"]
    for name, data in results.items():
        data["slowdown"] = (data["seconds"] / baseline
                            if baseline > 0 else None)

    registry = obs.MetricsRegistry()  # only for the report envelope
    report = build_report(registry, label=label, context={
        "base_chars": base_chars,
        "extends": extends,
        "chunk_chars": chunk_chars,
        "buffer_pages": buffer_pages,
        "repeats": repeats,
        "seed": seed,
    })
    report["wal"] = results
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="write a BENCH_wal-<label>.json snapshot of "
                    "extend throughput per WAL fsync policy")
    parser.add_argument("-o", "--outdir", default="benchmarks")
    parser.add_argument("--label",
                        help="snapshot label (default: timestamp)")
    parser.add_argument("--base-chars", type=int, default=4000)
    parser.add_argument("--extends", type=int, default=64)
    parser.add_argument("--chunk-chars", type=int, default=64)
    parser.add_argument("--buffer-pages", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=29)
    args = parser.parse_args(argv)

    label = args.label or time.strftime("%Y%m%d-%H%M%S")
    report = collect_snapshot(
        base_chars=args.base_chars, extends=args.extends,
        chunk_chars=args.chunk_chars, buffer_pages=args.buffer_pages,
        repeats=args.repeats, seed=args.seed, label=label)
    os.makedirs(args.outdir, exist_ok=True)
    path = os.path.join(args.outdir, f"BENCH_wal-{label}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"wrote {path}")
    for name, _, _ in CONFIGURATIONS:
        data = report["wal"][name]
        print(f"  {name:8s}: {data['extends_per_sec']:,.0f} extends/s "
              f"({data['chars_per_sec']:,.0f} chars/s, "
              f"{data['slowdown']:.2f}x baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
