"""The whole-reproduction health check as one bench."""

from repro.experiments import run_experiment


def test_reproduction_summary(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("summary"),
                                rounds=1, iterations=1)
    assert result.data["all_hold"], result.format()
    benchmark.extra_info["rows"] = result.rows
