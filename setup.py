"""Offline-friendly install shim (``python setup.py develop``).

The canonical metadata lives in pyproject.toml; this shim exists because
fully offline environments cannot run pip's isolated PEP 517 build.
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": ["spine = repro.cli:main"],
    },
)
